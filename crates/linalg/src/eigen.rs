//! Cyclic Jacobi eigensolver for small symmetric matrices.
//!
//! The randomized SVD reduces the big sparse problem to the eigenproblem of
//! an `l × l` Gram matrix with `l = k + oversampling ≲ 60`. Cyclic Jacobi is
//! the textbook choice at this size: unconditionally convergent, simple, and
//! accurate to machine precision for symmetric input.

use crate::dense::Matrix;

/// Eigendecomposition of a symmetric matrix: `a = V · diag(λ) · Vᵀ`,
/// eigenvalues sorted **descending**, eigenvectors as the columns of `V`.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `i` pairs with `values[i]`.
    pub vectors: Matrix,
}

/// Computes the eigendecomposition of a symmetric matrix by cyclic Jacobi
/// rotations.
///
/// Only the lower triangle is read; the matrix is assumed symmetric.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn symmetric_eigen(a: &Matrix) -> SymmetricEigen {
    assert_eq!(a.rows(), a.cols(), "symmetric_eigen: matrix must be square");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    if n > 0 {
        let scale = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .fold(0.0f64, |s, (i, j)| s.max(m[(i, j)].abs()))
            .max(f64::MIN_POSITIVE);
        let tol = 1e-14 * scale;

        // Cyclic sweeps over the strict upper triangle until off-diagonal
        // mass is negligible. 30 sweeps is far beyond what l ≤ 60 needs
        // (quadratic convergence kicks in after ~3).
        for _sweep in 0..30 {
            let mut off = 0.0f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    off = off.max(m[(p, q)].abs());
                }
            }
            if off <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Rotation angle zeroing m[p][q] (Golub & Van Loan 8.4).
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;

                    for i in 0..n {
                        let mip = m[(i, p)];
                        let miq = m[(i, q)];
                        m[(i, p)] = c * mip - s * miq;
                        m[(i, q)] = s * mip + c * miq;
                    }
                    for j in 0..n {
                        let mpj = m[(p, j)];
                        let mqj = m[(q, j)];
                        m[(p, j)] = c * mpj - s * mqj;
                        m[(q, j)] = s * mpj + c * mqj;
                    }
                    for i in 0..n {
                        let vip = v[(i, p)];
                        let viq = v[(i, q)];
                        v[(i, p)] = c * vip - s * viq;
                        v[(i, q)] = s * vip + c * viq;
                    }
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).expect("eigenvalues are finite"));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);

    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let n = e.values.len();
        let lam = Matrix::from_fn(n, n, |r, c| if r == c { e.values[r] } else { 0.0 });
        e.vectors.matmul(&lam).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = 3.0;
        let e = symmetric_eigen(&a);
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
        assert!(orthonormality_error(&e.vectors) < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn reconstruction_on_random_symmetric() {
        let b = Matrix::from_fn(8, 8, |r, c| (((r * 13 + c * 7) % 17) as f64 - 8.0) / 4.0);
        let a = {
            // a = b + bᵀ is symmetric.
            let bt = b.transpose();
            Matrix::from_fn(8, 8, |r, c| b[(r, c)] + bt[(r, c)])
        };
        let e = symmetric_eigen(&a);
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-10);
        assert!(orthonormality_error(&e.vectors) < 1e-11);
        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn psd_matrix_has_nonnegative_eigenvalues() {
        // G = Mᵀ M is positive semidefinite.
        let m = Matrix::from_fn(5, 3, |r, c| ((r + 2 * c) % 5) as f64 - 2.0);
        let g = m.transpose().matmul(&m);
        let e = symmetric_eigen(&g);
        for &l in &e.values {
            assert!(l > -1e-10, "PSD eigenvalue went negative: {l}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let e = symmetric_eigen(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
        let mut a = Matrix::zeros(1, 1);
        a[(0, 0)] = -4.0;
        let e = symmetric_eigen(&a);
        assert_eq!(e.values, vec![-4.0]);
        assert_eq!(e.vectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn non_square_panics() {
        symmetric_eigen(&Matrix::zeros(2, 3));
    }
}
