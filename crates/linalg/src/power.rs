//! Power iteration for the dominant singular triplet.
//!
//! A one-line sanity oracle for the randomized SVD: alternate `u ← A v`,
//! `v ← Aᵀ u` with normalization until the Rayleigh quotient stabilizes.

use crate::sparse::CsrMatrix;
use crate::vector::{norm2, normalize};

/// Result of [`power_iteration`].
#[derive(Clone, Debug)]
pub struct DominantTriplet {
    /// Dominant singular value σ₁.
    pub sigma: f64,
    /// Left singular vector (length = rows).
    pub u: Vec<f64>,
    /// Right singular vector (length = cols).
    pub v: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
}

/// Estimates the dominant singular triplet of `a` by alternating power
/// iteration, stopping when σ changes by less than `tol` (relative) or after
/// `max_iters`.
pub fn power_iteration(a: &CsrMatrix, max_iters: usize, tol: f64) -> DominantTriplet {
    let n = a.cols();
    if n == 0 || a.rows() == 0 || a.nnz() == 0 {
        return DominantTriplet {
            sigma: 0.0,
            u: vec![0.0; a.rows()],
            v: vec![0.0; n],
            iterations: 0,
        };
    }

    // Deterministic non-degenerate start: varying positive entries so the
    // iterate is never orthogonal to a nonnegative matrix's dominant vector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 2654435761) % 97) as f64 / 97.0).collect();
    normalize(&mut v);

    let mut sigma_prev = 0.0;
    let mut u = vec![0.0; a.rows()];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        u = a.matvec(&v);
        let un = normalize(&mut u);
        if un == 0.0 {
            break;
        }
        v = a.matvec_transpose(&u);
        let sigma = norm2(&v);
        normalize(&mut v);
        if sigma > 0.0 && (sigma - sigma_prev).abs() <= tol * sigma {
            sigma_prev = sigma;
            break;
        }
        sigma_prev = sigma;
    }

    DominantTriplet {
        sigma: sigma_prev,
        u,
        v,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_value_of_diagonal() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 9.0), (2, 2, 4.0)]);
        let t = power_iteration(&a, 500, 1e-12);
        assert!((t.sigma - 9.0).abs() < 1e-6, "sigma = {}", t.sigma);
        // Right vector concentrates on coordinate 1.
        assert!(t.v[1].abs() > 0.999);
    }

    #[test]
    fn all_ones_block() {
        // m×n all-ones has σ₁ = √(m·n).
        let triplets: Vec<(u32, u32, f64)> = (0..12u32).map(|i| (i / 4, i % 4, 1.0)).collect();
        let a = CsrMatrix::from_triplets(3, 4, &triplets);
        let t = power_iteration(&a, 200, 1e-12);
        assert!((t.sigma - 12f64.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn empty_matrix_returns_zero() {
        let a = CsrMatrix::from_triplets(3, 3, &[]);
        let t = power_iteration(&a, 100, 1e-9);
        assert_eq!(t.sigma, 0.0);
        assert_eq!(t.iterations, 0);
    }

    #[test]
    fn agrees_with_randomized_svd() {
        let triplets: Vec<(u32, u32, f64)> = (0..60u32)
            .map(|i| (i % 10, (i * 7) % 6, 1.0 + (i % 4) as f64))
            .collect();
        let a = CsrMatrix::from_triplets(10, 6, &triplets);
        let t = power_iteration(&a, 1000, 1e-13);
        let svd = crate::svd::randomized_svd(&a, 1, crate::svd::SvdOptions::default());
        assert!(
            (t.sigma - svd.s[0]).abs() < 1e-6,
            "power {} vs svd {}",
            t.sigma,
            svd.s[0]
        );
    }
}
