//! Orthonormalization of tall-skinny matrices.
//!
//! The randomized SVD only needs an orthonormal basis `Q` of the range of a
//! tall matrix `Y` (m × l, l small). Modified Gram–Schmidt with a second
//! re-orthogonalization pass ("MGS2") is numerically adequate for this use
//! ("twice is enough", Giraud et al.), and degenerate columns — which occur
//! when the underlying operator has rank < l — are replaced by deterministic
//! pseudo-random directions so `Q` always has exactly orthonormal columns.

use crate::dense::Matrix;
use crate::vector::{axpy, dot, normalize, norm2};

/// Relative norm threshold below which a column counts as linearly dependent.
const DEGENERACY_TOL: f64 = 1e-10;

/// Orthonormalizes the columns of `y` in place (modified Gram–Schmidt with
/// re-orthogonalization). Returns the number of columns that had to be
/// replaced because they were linearly dependent on earlier ones.
pub fn orthonormalize(y: &mut Matrix) -> usize {
    let l = y.cols();
    let mut replaced = 0usize;
    // Column-major scratch: MGS works column-wise; `Matrix` is row-major, so
    // pull the columns out once instead of striding on every dot product.
    let mut cols: Vec<Vec<f64>> = (0..l).map(|c| y.col(c)).collect();

    for j in 0..l {
        let original_norm = norm2(&cols[j]).max(f64::MIN_POSITIVE);
        let mut attempt = 0usize;
        loop {
            // Two MGS passes against all previous columns.
            for _pass in 0..2 {
                for i in 0..j {
                    let (head, tail) = cols.split_at_mut(j);
                    let qi = &head[i];
                    let cj = &mut tail[0];
                    let r = dot(qi, cj);
                    axpy(-r, qi, cj);
                }
            }
            let n = normalize(&mut cols[j]);
            if n > DEGENERACY_TOL * original_norm && n > 0.0 {
                break;
            }
            // Column was (numerically) in the span of its predecessors:
            // substitute a deterministic pseudo-random direction and retry.
            replaced += 1;
            attempt += 1;
            let col = &mut cols[j];
            for (r, v) in col.iter_mut().enumerate() {
                *v = pseudo_random(j as u64, attempt as u64, r as u64);
            }
            if attempt > 4 {
                // Pathological (e.g. more columns than rows): zero it out.
                for v in cols[j].iter_mut() {
                    *v = 0.0;
                }
                break;
            }
        }
    }

    for (c, colv) in cols.iter().enumerate() {
        y.set_col(c, colv);
    }
    replaced
}

/// SplitMix64-based deterministic value in (-1, 1).
fn pseudo_random(a: u64, b: u64, c: u64) -> f64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Max deviation of `QᵀQ` from the identity — a test/diagnostic helper.
pub fn orthonormality_error(q: &Matrix) -> f64 {
    let g = q.transpose().matmul(q);
    g.max_abs_diff(&Matrix::identity(q.cols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    #[test]
    fn orthonormalizes_random_tall_matrix() {
        let y = Matrix::from_fn(20, 5, |r, c| pseudo_random(7, r as u64, c as u64));
        let mut q = y.clone();
        let replaced = orthonormalize(&mut q);
        assert_eq!(replaced, 0);
        assert!(orthonormality_error(&q) < 1e-12);
    }

    #[test]
    fn span_is_preserved_for_full_rank_input() {
        // Q must satisfy Y = Q (QᵀY): projection of Y onto span(Q) equals Y.
        let y = Matrix::from_fn(12, 3, |r, c| ((r * 3 + c * 5) % 11) as f64 - 5.0);
        let mut q = y.clone();
        orthonormalize(&mut q);
        let proj = q.matmul(&q.transpose().matmul(&y));
        assert!(proj.max_abs_diff(&y) < 1e-9);
    }

    #[test]
    fn dependent_columns_are_replaced() {
        // Second column is 2× the first: rank 1 input, 3 columns.
        let mut y = Matrix::from_fn(8, 3, |r, c| match c {
            0 => (r + 1) as f64,
            1 => 2.0 * (r + 1) as f64,
            _ => -((r + 1) as f64),
        });
        let replaced = orthonormalize(&mut y);
        assert!(replaced >= 2, "two dependent columns must be replaced");
        assert!(orthonormality_error(&y) < 1e-10);
    }

    #[test]
    fn zero_matrix_becomes_orthonormal() {
        let mut y = Matrix::zeros(6, 2);
        orthonormalize(&mut y);
        assert!(orthonormality_error(&y) < 1e-10);
    }

    #[test]
    fn already_orthonormal_is_stable() {
        let mut q = Matrix::zeros(4, 2);
        q[(0, 0)] = 1.0;
        q[(1, 1)] = 1.0;
        let before = q.clone();
        let replaced = orthonormalize(&mut q);
        assert_eq!(replaced, 0);
        assert!(q.max_abs_diff(&before) < 1e-12);
    }
}
