#![warn(missing_docs)]

//! Minimal dense/sparse linear-algebra substrate for the SVD-based fraud
//! detection baselines (SpokEn, FBox).
//!
//! The paper's spectral baselines need exactly one nontrivial primitive: the
//! **top-k singular triplets of a large sparse bipartite adjacency matrix**.
//! Rather than pulling a LAPACK binding, this crate implements the standard
//! randomized truncated SVD (Halko–Martinsson–Tropp) from first principles:
//!
//! - [`dense::Matrix`] — small row-major dense matrices,
//! - [`vector`] — dense vector kernels (dot, axpy, norms),
//! - [`qr::orthonormalize`] — modified Gram–Schmidt with re-orthogonalization,
//! - [`eigen::symmetric_eigen`] — cyclic Jacobi eigensolver for small
//!   symmetric matrices,
//! - [`sparse::CsrMatrix`] — CSR storage with `A·x`, `Aᵀ·x` and blocked
//!   dense products,
//! - [`svd::randomized_svd`] — the composition of the above,
//! - [`svd::svd_small`] — exact (Gram-based) SVD for small dense matrices,
//!   used as the reference implementation in tests,
//! - [`power::power_iteration`] — dominant singular triplet, a cheap
//!   cross-check of the randomized method.
//!
//! Everything is `f64`; matrices in the target workloads are at most a few
//! million nonzeros with k ≤ 50 components.

pub mod dense;
pub mod eigen;
pub mod lanczos;
pub mod power;
pub mod qr;
pub mod sparse;
pub mod svd;
pub mod vector;

pub use dense::Matrix;
pub use lanczos::lanczos_svd;
pub use sparse::CsrMatrix;
pub use svd::{randomized_svd, svd_small, Svd, SvdOptions};
