//! Dense vector kernels.
//!
//! Plain free functions over `&[f64]` — the hot loops of the SVD are matrix
//! products, so these stay simple and let LLVM autovectorize.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha·x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit norm in place; returns the original norm.
/// A (near-)zero vector is left untouched and 0.0 is returned.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 && n.is_finite() {
        scale(1.0 / n, x);
        n
    } else {
        0.0
    }
}

/// Maximum absolute entry (∞-norm); 0.0 for empty input.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn normalize_returns_norm() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn inf_norm() {
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
