//! Small row-major dense matrices.
//!
//! Used for the `m × l` subspace bases and `l × l` core matrices of the
//! randomized SVD, where `l = k + oversampling` is a few dozen. Nothing here
//! is tuned for large dense operands.

use crate::vector;

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Writes `values` into column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows, "set_col: length mismatch");
        for (r, &v) in values.iter().enumerate() {
            self[(r, c)] = v;
        }
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams rhs rows, friendly to the row-major layout.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                vector::axpy(a, rrow, orow);
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        (0..self.rows).map(|r| vector::dot(self.row(r), x)).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::dot(&self.data, &self.data).sqrt()
    }

    /// Largest absolute entry difference against `other` (shape must match).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "max_abs_diff: shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let i = Matrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_and_row_col_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0]);
    }

    #[test]
    fn set_col_round_trips() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 2, |r, c| (r + c * 7) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(1, 2)], m[(2, 1)]);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 1)] = 0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
