//! Golub–Kahan–Lanczos bidiagonalization SVD.
//!
//! An independent route to the same top-k singular triplets the randomized
//! method computes: build an orthonormal Krylov basis pair `(U, V)` with
//! `A V = U B` and `Aᵀ U = V Bᵀ` for a small lower-bidiagonal `B`, then
//! solve `B` exactly. Full reorthogonalization keeps the basis orthonormal
//! despite floating-point drift (cheap at the `l ≤ 60` dimensions used
//! here). Serves as a second implementation for cross-validation in tests
//! and as the better choice when the spectrum decays slowly.

use crate::dense::Matrix;
use crate::sparse::CsrMatrix;
use crate::svd::{svd_small, Svd};
use crate::vector::{axpy, dot, normalize, norm2};

/// Computes the top-`k` singular triplets via Lanczos bidiagonalization
/// with full reorthogonalization.
///
/// `extra` Krylov directions beyond `k` (like oversampling) sharpen the
/// extremal triplets; 8–10 is plenty. `k` is clamped to `min(rows, cols)`.
pub fn lanczos_svd(a: &CsrMatrix, k: usize, extra: usize) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    let k = k.min(m).min(n);
    if k == 0 || a.nnz() == 0 {
        return Svd {
            u: Matrix::zeros(m, k),
            s: vec![0.0; k],
            v: Matrix::zeros(n, k),
        };
    }
    // One step beyond min(m, n): when the u-side exhausts first, the final
    // iteration α-breaks and contributes the trailing β column that makes
    // the bidiagonal core exact (e.g. a 1×n matrix needs B = [α β]).
    let l = (k + extra).min(m.min(n) + 1);

    // Krylov bases as row-major column stacks.
    let mut us: Vec<Vec<f64>> = Vec::with_capacity(l);
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(l);
    let mut alphas: Vec<f64> = Vec::with_capacity(l);
    let mut betas: Vec<f64> = Vec::with_capacity(l); // beta[j] couples v_{j+1}

    // Deterministic start vector with energy in every coordinate class.
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((i.wrapping_mul(2654435761)) % 89) as f64 / 89.0)
        .collect();
    normalize(&mut v);

    for j in 0..l {
        // u_j = A v_j − β_{j−1} u_{j−1}   (so  A v_j = β_{j−1} u_{j−1} + α_j u_j)
        let mut u = a.matvec(&v);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(-beta_prev, &us[j - 1], &mut u);
        }
        // Full reorthogonalization against previous left vectors.
        for prev in &us {
            let r = dot(prev, &u);
            axpy(-r, prev, &mut u);
        }
        let alpha = normalize(&mut u);
        vs.push(v.clone());
        alphas.push(alpha);
        us.push(u);
        if alpha <= 1e-12 {
            // α-breakdown: A v_j lies in the span of previous u's. The
            // column (β_{j−1}, α_j = 0) still belongs in B — dropping it
            // would lose β's contribution to the extremal σ (exact for
            // rank-deficient inputs). The zero u_j filler never receives
            // weight on nonzero singular values of B.
            break;
        }

        // v_{j+1} = Aᵀ u_j − α_j v_j   (so  Aᵀ u_j = α_j v_j + β_j v_{j+1})
        let mut v_next = a.matvec_transpose(&us[j]);
        axpy(-alpha, &vs[j], &mut v_next);
        for prev in &vs {
            let r = dot(prev, &v_next);
            axpy(-r, prev, &mut v_next);
        }
        let beta = norm2(&v_next);
        if beta <= 1e-12 || j + 1 == l {
            // β-breakdown: (U, V) span an exact invariant pair and B is
            // square upper bidiagonal — the triplets are exact.
            break;
        }
        normalize(&mut v_next);
        betas.push(beta);
        v = v_next;
    }

    let steps = alphas.len();
    if steps == 0 {
        return Svd {
            u: Matrix::zeros(m, k),
            s: vec![0.0; k],
            v: Matrix::zeros(n, k),
        };
    }

    // Upper-bidiagonal core with A·V = U·B: B[j][j] = α_j, B[j][j+1] = β_j.
    let mut b = Matrix::zeros(steps, steps);
    for j in 0..steps {
        b[(j, j)] = alphas[j];
        if j + 1 < steps {
            b[(j, j + 1)] = betas[j];
        }
    }
    let core = svd_small(&b, steps);

    // Lift: U = [u_1 … u_steps] · U_B, V = [v_1 … v_steps] · V_B.
    let kk = k.min(steps);
    let mut u_out = Matrix::zeros(m, k);
    let mut v_out = Matrix::zeros(n, k);
    let mut s_out = vec![0.0; k];
    for (c, s) in s_out.iter_mut().enumerate().take(kk) {
        *s = core.s[c];
        let mut ucol = vec![0.0; m];
        let mut vcol = vec![0.0; n];
        for j in 0..steps {
            let wu = core.u[(j, c)];
            if wu != 0.0 {
                axpy(wu, &us[j], &mut ucol);
            }
            let wv = core.v[(j, c)];
            if wv != 0.0 {
                axpy(wv, &vs[j], &mut vcol);
            }
        }
        u_out.set_col(c, &ucol);
        v_out.set_col(c, &vcol);
    }

    Svd {
        u: u_out,
        s: s_out,
        v: v_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;
    use crate::svd::{randomized_svd, SvdOptions};

    fn diag(values: &[f64]) -> CsrMatrix {
        let triplets: Vec<(u32, u32, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u32, i as u32, v))
            .collect();
        CsrMatrix::from_triplets(values.len(), values.len(), &triplets)
    }

    #[test]
    fn recovers_diagonal_spectrum() {
        let a = diag(&[9.0, 6.0, 4.0, 2.0, 1.0, 0.5]);
        let svd = lanczos_svd(&a, 3, 3);
        assert!((svd.s[0] - 9.0).abs() < 1e-8, "s = {:?}", svd.s);
        assert!((svd.s[1] - 6.0).abs() < 1e-8);
        assert!((svd.s[2] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn factors_are_orthonormal() {
        let triplets: Vec<(u32, u32, f64)> = (0..80u32)
            .map(|i| (i % 12, (i * 5) % 9, 1.0 + (i % 3) as f64))
            .collect();
        let a = CsrMatrix::from_triplets(12, 9, &triplets);
        let svd = lanczos_svd(&a, 5, 4);
        assert!(orthonormality_error(&svd.u) < 1e-8);
        assert!(orthonormality_error(&svd.v) < 1e-8);
    }

    #[test]
    fn agrees_with_randomized_svd() {
        let triplets: Vec<(u32, u32, f64)> = (0..200u32)
            .map(|i| (i % 25, (i * 7) % 18, ((i % 6) as f64) - 2.0))
            .collect();
        let a = CsrMatrix::from_triplets(25, 18, &triplets);
        // extra = 12 exhausts the 18-dim Krylov space: exact triplets.
        let lz = lanczos_svd(&a, 6, 12);
        let rd = randomized_svd(
            &a,
            6,
            SvdOptions {
                power_iters: 4,
                ..Default::default()
            },
        );
        for i in 0..6 {
            assert!(
                (lz.s[i] - rd.s[i]).abs() < 1e-5 * (1.0 + rd.s[i]),
                "σ{i}: lanczos {} vs randomized {}",
                lz.s[i],
                rd.s[i]
            );
        }
    }

    #[test]
    fn agrees_with_exact_small_svd() {
        let triplets: Vec<(u32, u32, f64)> = (0..50u32)
            .map(|i| (i % 8, (i * 3) % 7, 1.0 + (i % 5) as f64 / 2.0))
            .collect();
        let a = CsrMatrix::from_triplets(8, 7, &triplets);
        let exact = svd_small(&a.to_dense(), 4);
        let lz = lanczos_svd(&a, 4, 3);
        for i in 0..4 {
            assert!(
                (exact.s[i] - lz.s[i]).abs() < 1e-7 * (1.0 + exact.s[i]),
                "σ{i}: exact {} vs lanczos {}",
                exact.s[i],
                lz.s[i]
            );
        }
    }

    #[test]
    fn rank_deficient_stops_early_with_zero_tail() {
        // Rank-1 all-ones 5×5: σ₁ = 5, rest zero.
        let triplets: Vec<(u32, u32, f64)> = (0..25u32).map(|i| (i / 5, i % 5, 1.0)).collect();
        let a = CsrMatrix::from_triplets(5, 5, &triplets);
        let svd = lanczos_svd(&a, 3, 2);
        assert!((svd.s[0] - 5.0).abs() < 1e-9);
        assert!(svd.s[1].abs() < 1e-9);
        assert!(svd.s[2].abs() < 1e-9);
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::from_triplets(4, 4, &[]);
        let svd = lanczos_svd(&a, 2, 2);
        assert_eq!(svd.s, vec![0.0, 0.0]);
    }

    #[test]
    fn reconstruction_of_low_rank() {
        // Rank-2 matrix reconstructed exactly at k = 2.
        let mut triplets = Vec::new();
        for i in 0..10u32 {
            for j in 0..6u32 {
                let v = (i % 2) as f64 * 2.0 + (j % 3) as f64 * ((i % 5) as f64 / 2.0);
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        let a = CsrMatrix::from_triplets(10, 6, &triplets);
        let dense = a.to_dense();
        let exact = svd_small(&dense, 6);
        let effective_rank = exact.s.iter().filter(|&&s| s > 1e-9).count();
        let svd = lanczos_svd(&a, effective_rank, 4);
        assert!(
            svd.reconstruct().max_abs_diff(&dense) < 1e-7,
            "rank-{effective_rank} reconstruction failed"
        );
    }
}
