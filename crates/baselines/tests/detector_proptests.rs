//! Property tests for the unified `Detector` registry: every adapter is
//! total (no panics) and emits finite per-user scores in `[0, 1]` on
//! arbitrary bipartite graphs, including degenerate ones.

use ensemfdet::DetectContext;
use ensemfdet_baselines::standard_detectors;
use ensemfdet_graph::BipartiteGraph;
use proptest::prelude::*;

fn arb_graph(max_side: u32, max_edges: usize) -> impl Strategy<Value = BipartiteGraph> {
    (1..=max_side, 1..=max_side).prop_flat_map(move |(nu, nv)| {
        prop::collection::vec((0..nu, 0..nv), 1..=max_edges).prop_map(move |mut edges| {
            edges.sort_unstable();
            edges.dedup();
            BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every registry detector returns one finite score in `[0, 1]` per
    /// user, and any blocks it reports only reference nodes that exist.
    #[test]
    fn detectors_are_finite_unit_interval(g in arb_graph(12, 60)) {
        let ctx = DetectContext::new(&g);
        for d in standard_detectors() {
            let out = d.score(&ctx);
            prop_assert_eq!(out.scores.len(), g.num_users(), "{}", d.name());
            for &s in &out.scores {
                prop_assert!(
                    s.is_finite() && (0.0..=1.0).contains(&s),
                    "{} score {s}", d.name()
                );
            }
            if let Some(blocks) = &out.blocks {
                for b in blocks {
                    prop_assert!(b.users.iter().all(|u| u.index() < g.num_users()));
                    prop_assert!(b.merchants.iter().all(|v| v.index() < g.num_merchants()));
                }
            }
        }
    }
}

/// Empty, edgeless, and single-edge graphs go through every detector
/// without panicking.
#[test]
fn detectors_survive_degenerate_graphs() {
    for g in [
        BipartiteGraph::from_edges(0, 0, vec![]).unwrap(),
        BipartiteGraph::from_edges(4, 3, vec![]).unwrap(),
        BipartiteGraph::from_edges(1, 1, vec![(0, 0)]).unwrap(),
    ] {
        let ctx = DetectContext::new(&g);
        for d in standard_detectors() {
            let out = d.score(&ctx);
            assert_eq!(out.scores.len(), g.num_users(), "{}", d.name());
            assert!(
                out.scores
                    .iter()
                    .all(|s| s.is_finite() && (0.0..=1.0).contains(s)),
                "{}",
                d.name()
            );
        }
    }
}
