//! Fraudar (Hooi et al., KDD 2016), iterated to `K` blocks.
//!
//! The single-block Fraudar is exactly the greedy peel under the
//! log-weighted metric; the multi-block variant the paper benchmarks
//! (`K = 30` in Table III) repeats the peel after deleting the detected
//! block's edges. Unlike FDET it has **no truncation** — it returns all `K`
//! blocks regardless of quality — and it removes only the blocks' internal
//! edges, so detected node sets may overlap. Its operating points are the
//! cumulative detected-user sets after 1, 2, …, K blocks: a coarse,
//! uncontrollable polyline (the paper's Figures 3–4 diamonds).

use ensemfdet::metric::MetricKind;
use ensemfdet::peel::peel_densest;
use ensemfdet::Block;
use ensemfdet_graph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Fraudar configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FraudarConfig {
    /// Number of blocks to extract (the paper fixes 30).
    pub k: usize,
    /// Density metric (log-weighted by default, as in the original paper).
    pub metric: MetricKind,
}

impl Default for FraudarConfig {
    fn default() -> Self {
        FraudarConfig {
            k: 30,
            metric: MetricKind::default(),
        }
    }
}

/// The Fraudar detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fraudar {
    /// Configuration.
    pub config: FraudarConfig,
}

/// Result of a Fraudar run.
#[derive(Clone, Debug)]
pub struct FraudarResult {
    /// Blocks in extraction order (scores are non-increasing in practice
    /// but not guaranteed).
    pub blocks: Vec<Block>,
}

impl FraudarResult {
    /// The cumulative detected user set after the first `k` blocks, sorted
    /// and deduplicated — one Figure 3/4 operating point per `k`.
    pub fn detected_users_after(&self, k: usize) -> Vec<u32> {
        let mut out: Vec<u32> = self.blocks[..k.min(self.blocks.len())]
            .iter()
            .flat_map(|b| b.users.iter().map(|u| u.0))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All operating points: `(k, cumulative detected users)` for
    /// `k = 1..=blocks`.
    pub fn operating_points(&self) -> Vec<(usize, Vec<u32>)> {
        (1..=self.blocks.len())
            .map(|k| (k, self.detected_users_after(k)))
            .collect()
    }
}

impl Fraudar {
    /// Builds a detector with the given config.
    pub fn new(config: FraudarConfig) -> Self {
        Fraudar { config }
    }

    /// Runs the iterated greedy on the full graph (no sampling — this is
    /// the sequential baseline the ensemble is compared against).
    pub fn run(&self, g: &BipartiteGraph) -> FraudarResult {
        let mut edge_alive = vec![true; g.num_edges()];
        let mut blocks = Vec::new();
        while blocks.len() < self.config.k {
            let Some(block) = peel_densest(g, &self.config.metric, &edge_alive) else {
                break;
            };
            for &e in &block.edges {
                edge_alive[e] = false;
            }
            if block.edges.is_empty() {
                blocks.push(block);
                break;
            }
            blocks.push(block);
        }
        FraudarResult { blocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    fn two_blocks_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in 0..3u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 6..10u32 {
            for v in 3..5u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 10..40u32 {
            b.add_edge(UserId(u), MerchantId(5 + u % 11));
        }
        b.build()
    }

    #[test]
    fn extracts_planted_blocks_first() {
        let g = two_blocks_graph();
        let r = Fraudar::new(FraudarConfig {
            k: 2,
            ..Default::default()
        })
        .run(&g);
        assert_eq!(r.blocks.len(), 2);
        let first: Vec<u32> = r.blocks[0].users.iter().map(|u| u.0).collect();
        assert!(first.iter().all(|&u| u < 6), "{first:?}");
        let second: Vec<u32> = r.blocks[1].users.iter().map(|u| u.0).collect();
        assert!(second.iter().all(|&u| (6..10).contains(&u)), "{second:?}");
    }

    #[test]
    fn cumulative_detection_is_monotone() {
        let g = two_blocks_graph();
        let r = Fraudar::default().run(&g);
        let mut prev = 0usize;
        for (_, detected) in r.operating_points() {
            assert!(detected.len() >= prev);
            prev = detected.len();
        }
    }

    #[test]
    fn stops_when_graph_exhausted() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 1)]).unwrap();
        let r = Fraudar::new(FraudarConfig {
            k: 100,
            ..Default::default()
        })
        .run(&g);
        assert!(r.blocks.len() <= 3);
        let total: usize = r.blocks.iter().map(|b| b.edges.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn detected_users_after_caps_at_len() {
        let g = two_blocks_graph();
        let r = Fraudar::new(FraudarConfig {
            k: 2,
            ..Default::default()
        })
        .run(&g);
        assert_eq!(
            r.detected_users_after(100),
            r.detected_users_after(r.blocks.len())
        );
    }

    #[test]
    fn empty_graph_returns_no_blocks() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]).unwrap();
        let r = Fraudar::default().run(&g);
        assert!(r.blocks.is_empty());
        assert!(r.operating_points().is_empty());
    }
}
