//! Naive degree-threshold baseline — the sanity floor.
//!
//! Fraud accounts in campaign abuse make more purchases than the median
//! honest account, so raw degree has *some* signal; any structural method
//! that cannot beat it is not exploiting the graph. Kept deliberately
//! trivial.

use ensemfdet_graph::{BipartiteGraph, UserId};

/// Scores each user by its degree.
#[derive(Clone, Copy, Debug, Default)]
pub struct DegreeBaseline;

impl DegreeBaseline {
    /// Per-user degree as a fraud score.
    pub fn score_users(&self, g: &BipartiteGraph) -> Vec<f64> {
        (0..g.num_users())
            .map(|u| g.user_degree(UserId(u as u32)) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_degrees() {
        let g = BipartiteGraph::from_edges(3, 2, vec![(0, 0), (0, 1), (2, 0)]).unwrap();
        assert_eq!(DegreeBaseline.score_users(&g), vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(2, 2, vec![]).unwrap();
        assert_eq!(DegreeBaseline.score_users(&g), vec![0.0, 0.0]);
    }
}
