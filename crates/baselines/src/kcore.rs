//! k-core baseline: a user's fraud score is its core number.
//!
//! Dense fraud blocks survive deep into the core hierarchy, so core
//! numbers are the cheapest dense-subgraph signal there is (linear time,
//! no parameters). They lack camouflage resistance and any notion of
//! block identity, which is exactly the gap between "dense region exists"
//! and the paper's block detectors.

use ensemfdet_graph::{core_decomposition, BipartiteGraph};

/// The k-core detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct KCoreBaseline;

impl KCoreBaseline {
    /// Per-user core number as a fraud score.
    pub fn score_users(&self, g: &BipartiteGraph) -> Vec<f64> {
        core_decomposition(g)
            .user_core
            .into_iter()
            .map(|k| k as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    #[test]
    fn block_users_outscore_background() {
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 6..40u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 17));
        }
        let g = b.build();
        let s = KCoreBaseline.score_users(&g);
        let block_min = (0..6).map(|u| s[u]).fold(f64::INFINITY, f64::min);
        let bg_max = (6..40).map(|u| s[u]).fold(0.0f64, f64::max);
        assert!(block_min > bg_max);
        assert_eq!(block_min, 4.0);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(2, 2, vec![]).unwrap();
        assert_eq!(KCoreBaseline.score_users(&g), vec![0.0, 0.0]);
    }
}
