//! HITS-based suspiciousness (Kleinberg \[19\], as used by the HITS-like
//! fraud detectors the paper's related work surveys — TrustRank, CatchSync
//! and friends).
//!
//! On a bipartite purchase graph the hub/authority recursion
//! `h = A a, a = Aᵀ h` converges to the dominant singular pair of `A`:
//! users whose purchases concentrate on the most "authoritative" (most
//! hammered) merchants earn high hub scores. Fraud rings — many users
//! synchronously hitting the same merchants — light up exactly this way.
//! CatchSync additionally normalizes by degree to expose *synchronized*
//! behaviour; we provide both the raw hub score and the degree-normalized
//! "HITSness" variant.

use ensemfdet_graph::{BipartiteGraph, UserId};
use serde::{Deserialize, Serialize};

/// HITS configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HitsConfig {
    /// Maximum power iterations.
    pub max_iters: usize,
    /// Relative convergence tolerance on the hub vector.
    pub tol: f64,
    /// Divide each user's hub score by its degree (CatchSync-style
    /// synchronization normalization).
    pub normalize_by_degree: bool,
}

impl Default for HitsConfig {
    fn default() -> Self {
        HitsConfig {
            max_iters: 100,
            tol: 1e-10,
            normalize_by_degree: true,
        }
    }
}

/// The HITS-based detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hits {
    /// Configuration.
    pub config: HitsConfig,
}

/// Converged hub/authority vectors.
#[derive(Clone, Debug)]
pub struct HitsScores {
    /// Hub score per user (ℓ₂-normalized before optional degree division).
    pub hubs: Vec<f64>,
    /// Authority score per merchant (ℓ₂-normalized).
    pub authorities: Vec<f64>,
    /// Iterations until convergence.
    pub iterations: usize,
}

impl Hits {
    /// Builds a detector.
    pub fn new(config: HitsConfig) -> Self {
        Hits { config }
    }

    /// Runs the hub/authority recursion to convergence.
    pub fn run(&self, g: &BipartiteGraph) -> HitsScores {
        let nu = g.num_users();
        let nv = g.num_merchants();
        let mut hubs = vec![1.0f64; nu];
        let mut authorities = vec![0.0f64; nv];
        let mut iterations = 0;
        if g.num_edges() == 0 || nu == 0 || nv == 0 {
            return HitsScores {
                hubs: vec![0.0; nu],
                authorities: vec![0.0; nv],
                iterations,
            };
        }
        normalize(&mut hubs);

        for it in 0..self.config.max_iters {
            iterations = it + 1;
            // a = Aᵀ h
            authorities.iter_mut().for_each(|a| *a = 0.0);
            for (_, u, v, w) in g.edges() {
                authorities[v.index()] += w * hubs[u.index()];
            }
            normalize(&mut authorities);
            // h' = A a
            let mut new_hubs = vec![0.0f64; nu];
            for (_, u, v, w) in g.edges() {
                new_hubs[u.index()] += w * authorities[v.index()];
            }
            normalize(&mut new_hubs);
            let delta = hubs
                .iter()
                .zip(&new_hubs)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            hubs = new_hubs;
            if delta < self.config.tol {
                break;
            }
        }

        HitsScores {
            hubs,
            authorities,
            iterations,
        }
    }

    /// Per-user fraud scores: the hub score, optionally degree-normalized.
    pub fn score_users(&self, g: &BipartiteGraph) -> Vec<f64> {
        let scores = self.run(g);
        if !self.config.normalize_by_degree {
            return scores.hubs;
        }
        (0..g.num_users())
            .map(|u| {
                let d = g.user_degree(UserId(u as u32));
                if d == 0 {
                    0.0
                } else {
                    scores.hubs[u] / d as f64
                }
            })
            .collect()
    }
}

fn normalize(x: &mut [f64]) {
    let n: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if n > 0.0 {
        for v in x {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId};

    fn ring_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // Synchronized ring: 10 users × 3 merchants, complete.
        for u in 0..10u32 {
            for v in 0..3u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        // Background: 50 users, 1 purchase each, spread over 25 merchants.
        for u in 10..60u32 {
            b.add_edge(UserId(u), MerchantId(3 + u % 25));
        }
        b.build()
    }

    #[test]
    fn converges_to_dominant_singular_pair() {
        let g = ring_graph();
        let scores = Hits::default().run(&g);
        assert!(scores.iterations < 100);
        // The ring dominates the dominant singular pair: its merchants get
        // the top authorities, its users the top hubs.
        for v in 0..3 {
            for bg in 3..28 {
                assert!(scores.authorities[v] > scores.authorities[bg]);
            }
        }
        for u in 0..10 {
            for bg in 10..60 {
                assert!(scores.hubs[u] > scores.hubs[bg]);
            }
        }
    }

    #[test]
    fn ring_users_outscore_background() {
        let g = ring_graph();
        let s = Hits::default().score_users(&g);
        let ring_min = (0..10).map(|u| s[u]).fold(f64::INFINITY, f64::min);
        let bg_max = (10..60).map(|u| s[u]).fold(0.0f64, f64::max);
        assert!(ring_min > bg_max, "ring {ring_min} vs bg {bg_max}");
    }

    #[test]
    fn scores_match_power_iteration_singular_vector() {
        let g = ring_graph();
        let scores = Hits::new(HitsConfig {
            normalize_by_degree: false,
            ..Default::default()
        })
        .run(&g);
        let a = crate::adjacency_matrix(&g);
        let triplet = ensemfdet_linalg::power::power_iteration(&a, 1000, 1e-13);
        // Hub vector ≈ dominant left singular vector (up to sign; both are
        // nonnegative here).
        for (h, u) in scores.hubs.iter().zip(&triplet.u) {
            assert!((h - u.abs()).abs() < 1e-5, "hub {h} vs u {u}");
        }
    }

    #[test]
    fn empty_graph_scores_zero() {
        let g = BipartiteGraph::from_edges(3, 3, vec![]).unwrap();
        let s = Hits::default().score_users(&g);
        assert_eq!(s, vec![0.0; 3]);
    }

    #[test]
    fn deterministic() {
        let g = ring_graph();
        assert_eq!(
            Hits::default().score_users(&g),
            Hits::default().score_users(&g)
        );
    }
}
