#![warn(missing_docs)]

//! The comparison methods of the paper's evaluation (Section V-B2):
//!
//! - [`fraudar`] — **Fraudar** (Hooi et al., KDD 2016), the strongest
//!   baseline: greedy log-weighted densest-subgraph peeling, iterated to a
//!   caller-fixed number of blocks `K`. It detects whole blocks at once,
//!   which is exactly why its precision–recall trace is a coarse polyline
//!   (the diamond points of Figures 3–4) rather than a smooth curve.
//! - [`spoken`] — **SpokEn** (Prakash et al., PAKDD 2010): "eigenspokes" in
//!   the top-k singular vectors of the adjacency matrix; nodes with large
//!   components in any spoke are suspicious.
//! - [`fbox`] — **FBox** (Shah et al., ICDM 2014): nodes whose degree is
//!   poorly explained by the top-k SVD reconstruction (small-scale attacks
//!   are invisible to the leading spectral structure).
//!
//! Both spectral methods emit per-user scores so the evaluation sweeps
//! thresholds; Fraudar emits cumulative block detections per `k`.
//!
//! Beyond the paper's three comparison methods, [`hits`] implements the
//! HITS-style suspiciousness the related-work section surveys (Kleinberg's
//! hubs/authorities with CatchSync-style degree normalization) and
//! [`degree`] a trivial degree-threshold sanity floor.

pub mod degree;
pub mod detectors;
pub mod fbox;
pub mod fraudar;
pub mod hits;
pub mod kcore;
pub mod spoken;

pub use degree::DegreeBaseline;
pub use detectors::standard_detectors;
pub use fbox::{FBox, FBoxConfig};
pub use fraudar::{Fraudar, FraudarConfig, FraudarResult};
pub use hits::{Hits, HitsConfig, HitsScores};
pub use kcore::KCoreBaseline;
pub use spoken::{Spoken, SpokenConfig};

/// Assembles the sparse user×merchant adjacency matrix of a bipartite
/// graph (binary on unweighted graphs, weighted otherwise).
pub fn adjacency_matrix(g: &ensemfdet_graph::BipartiteGraph) -> ensemfdet_linalg::CsrMatrix {
    let triplets: Vec<(u32, u32, f64)> = g.edges().map(|(_, u, v, w)| (u.0, v.0, w)).collect();
    ensemfdet_linalg::CsrMatrix::from_triplets(g.num_users(), g.num_merchants(), &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::BipartiteGraph;

    #[test]
    fn adjacency_matches_graph() {
        let g = BipartiteGraph::from_edges(3, 2, vec![(0, 0), (1, 1), (2, 0)]).unwrap();
        let a = adjacency_matrix(&g);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 2);
        assert_eq!(a.nnz(), 3);
        let d = a.to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 1)], 1.0);
        assert_eq!(d[(2, 0)], 1.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn weighted_graph_adjacency_keeps_weights() {
        let g = BipartiteGraph::from_weighted_edges(1, 1, vec![(0, 0)], vec![2.5]).unwrap();
        let a = adjacency_matrix(&g);
        assert_eq!(a.to_dense()[(0, 0)], 2.5);
    }
}
