//! SpokEn (Prakash et al., PAKDD 2010) adapted to fraud scoring, as in the
//! paper's comparison.
//!
//! EigenSpokes: in the scatter plots of pairs of singular vectors of a
//! graph's adjacency matrix, tightly-knit communities appear as "spokes" —
//! sets of nodes with exceptionally large components concentrated on one
//! vector. Fraud rings are exactly such communities. Following the paper we
//! run it with a fixed number of components (25) and, to obtain a sweepable
//! detector, score every user by the largest magnitude it attains across
//! the top-k left singular vectors. Nodes on a spoke score high; background
//! nodes, whose mass is spread thinly, score near zero.

use crate::adjacency_matrix;
use ensemfdet_graph::BipartiteGraph;
use ensemfdet_linalg::{randomized_svd, CsrMatrix, SvdOptions};
use serde::{Deserialize, Serialize};

/// SpokEn configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SpokenConfig {
    /// Number of SVD components; the paper uses 25.
    pub components: usize,
    /// Randomized-SVD power iterations.
    pub power_iters: usize,
    /// RNG seed for the SVD sketch.
    pub seed: u64,
}

impl Default for SpokenConfig {
    fn default() -> Self {
        SpokenConfig {
            components: 25,
            power_iters: 2,
            seed: 0x590C,
        }
    }
}

/// The SpokEn detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct Spoken {
    /// Configuration.
    pub config: SpokenConfig,
}

impl Spoken {
    /// Builds a detector.
    pub fn new(config: SpokenConfig) -> Self {
        Spoken { config }
    }

    /// Scores every user: `max_i |U[u, i]|` over the top-k left singular
    /// vectors. Higher ⇒ more spoke-like ⇒ more suspicious.
    pub fn score_users(&self, g: &BipartiteGraph) -> Vec<f64> {
        self.score_users_with(g, &adjacency_matrix(g))
    }

    /// [`score_users`](Self::score_users) against a pre-assembled
    /// adjacency matrix (which must describe `g`) — lets a hybrid scan
    /// share one matrix across every spectral component instead of each
    /// rebuilding it.
    pub fn score_users_with(&self, g: &BipartiteGraph, a: &CsrMatrix) -> Vec<f64> {
        debug_assert_eq!((a.rows(), a.cols()), (g.num_users(), g.num_merchants()));
        let k = self.config.components.min(g.num_users()).min(g.num_merchants());
        if k == 0 || g.num_edges() == 0 {
            return vec![0.0; g.num_users()];
        }
        let svd = randomized_svd(
            a,
            k,
            SvdOptions {
                power_iters: self.config.power_iters,
                seed: self.config.seed,
                ..Default::default()
            },
        );
        (0..g.num_users())
            .map(|u| {
                (0..svd.rank())
                    .map(|i| svd.u[(u, i)].abs())
                    .fold(0.0f64, f64::max)
            })
            .collect()
    }

    /// Scores every merchant analogously via the right singular vectors.
    pub fn score_merchants(&self, g: &BipartiteGraph) -> Vec<f64> {
        let a = adjacency_matrix(g);
        let k = self.config.components.min(g.num_users()).min(g.num_merchants());
        if k == 0 || g.num_edges() == 0 {
            return vec![0.0; g.num_merchants()];
        }
        let svd = randomized_svd(
            &a,
            k,
            SvdOptions {
                power_iters: self.config.power_iters,
                seed: self.config.seed,
                ..Default::default()
            },
        );
        (0..g.num_merchants())
            .map(|v| {
                (0..svd.rank())
                    .map(|i| svd.v[(v, i)].abs())
                    .fold(0.0f64, f64::max)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    /// Dense 8×4 block + sparse background: the block is the dominant
    /// spectral structure, so its users form the spoke of component 0.
    fn planted() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 8..60u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 29));
        }
        b.build()
    }

    #[test]
    fn block_users_outscore_background() {
        let g = planted();
        // Only the dominant component: the block owns it outright
        // (σ₀ = √32 vs √2 for the background's two-user stars). Deeper
        // components belong to those stars, whose exact singular vectors
        // have entries 1/√2 — larger than the block's 1/√8 — so a
        // max-over-many-components score would NOT separate the block.
        let scores = Spoken::new(SpokenConfig {
            components: 1,
            ..Default::default()
        })
        .score_users(&g);
        let block_min = (0..8).map(|u| scores[u]).fold(f64::INFINITY, f64::min);
        let bg_max = (8..60).map(|u| scores[u]).fold(0.0f64, f64::max);
        assert!(
            block_min > bg_max,
            "block min {block_min} vs background max {bg_max}"
        );
    }

    #[test]
    fn block_merchants_outscore_background() {
        let g = planted();
        // See block_users_outscore_background for the components: 1 choice.
        let scores = Spoken::new(SpokenConfig {
            components: 1,
            ..Default::default()
        })
        .score_merchants(&g);
        let block_min = (0..4).map(|v| scores[v]).fold(f64::INFINITY, f64::min);
        let bg_max = (4..33).map(|v| scores[v]).fold(0.0f64, f64::max);
        assert!(block_min > bg_max);
    }

    #[test]
    fn scores_are_bounded_by_one() {
        let g = planted();
        let scores = Spoken::default().score_users(&g);
        assert!(scores.iter().all(|&s| (0.0..=1.0 + 1e-9).contains(&s)));
        assert_eq!(scores.len(), g.num_users());
    }

    #[test]
    fn empty_graph_scores_zero() {
        let g = BipartiteGraph::from_edges(5, 5, vec![]).unwrap();
        let scores = Spoken::default().score_users(&g);
        assert_eq!(scores, vec![0.0; 5]);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = planted();
        let s1 = Spoken::default().score_users(&g);
        let s2 = Spoken::default().score_users(&g);
        assert_eq!(s1, s2);
    }
}
