//! [`Detector`] implementations for every baseline.
//!
//! Each method keeps its original, fully-configurable entry point
//! (`run` / `score_users`); the trait impls here are thin adapters that
//! map the method's native output onto the uniform contract — per-user
//! scores in `[0, 1]`, block structure where the method produces it —
//! without changing any ranking. Methods whose raw scores are unbounded
//! (FBox, k-core, degree) are min-max normalized, which is strictly
//! monotone on distinct values; the result-identity tests in `tests/`
//! gate that every adapter ranks users exactly as the bespoke entry
//! point does.
//!
//! Spectral methods score through
//! [`DetectContext::adjacency`], so a hybrid scan consulting several of
//! them assembles the user×merchant matrix once.

use crate::{DegreeBaseline, FBox, Fraudar, Hits, KCoreBaseline, Spoken};
use ensemfdet::scoring::{normalize_scores, ScoreNormalization};
use ensemfdet::{DetectContext, Detector, DetectorOutput};
use ensemfdet_graph::core_decomposition;

fn clamped(scores: Vec<f64>) -> Vec<f64> {
    scores.into_iter().map(|s| s.clamp(0.0, 1.0)).collect()
}

impl Detector for Fraudar {
    fn name(&self) -> &'static str {
        "fraudar"
    }

    /// Fraudar natively detects blocks, not scores; the adapter scores a
    /// user by the earliest block containing it — `(K - j) / K` for
    /// first appearance in block `j` — so the score sweep reproduces the
    /// method's cumulative per-`k` operating points exactly.
    fn score(&self, ctx: &DetectContext<'_>) -> DetectorOutput {
        let result = self.run(ctx.graph());
        let k = result.blocks.len().max(1) as f64;
        let mut scores = vec![0.0f64; ctx.graph().num_users()];
        for (j, block) in result.blocks.iter().enumerate() {
            let s = (result.blocks.len() - j) as f64 / k;
            for u in &block.users {
                if scores[u.index()] == 0.0 {
                    scores[u.index()] = s;
                }
            }
        }
        DetectorOutput::with_blocks(scores, result.blocks)
    }
}

impl Detector for Spoken {
    fn name(&self) -> &'static str {
        "spoken"
    }

    /// Singular-vector magnitudes are already in `[0, 1]` up to floating
    /// error (columns of `U` are orthonormal); clamped for the contract.
    fn score(&self, ctx: &DetectContext<'_>) -> DetectorOutput {
        DetectorOutput::scores_only(clamped(
            self.score_users_with(ctx.graph(), ctx.adjacency()),
        ))
    }
}

impl Detector for FBox {
    fn name(&self) -> &'static str {
        "fbox"
    }

    /// The raw score `residual · ln(1 + degree)` is unbounded above;
    /// min-max normalized onto `[0, 1]`.
    fn score(&self, ctx: &DetectContext<'_>) -> DetectorOutput {
        let raw = self.score_users_with(ctx.graph(), ctx.adjacency());
        DetectorOutput::scores_only(normalize_scores(&raw, ScoreNormalization::MinMax))
    }
}

impl Detector for KCoreBaseline {
    fn name(&self) -> &'static str {
        "kcore"
    }

    /// Core number divided by the graph's degeneracy.
    fn score(&self, ctx: &DetectContext<'_>) -> DetectorOutput {
        let cores = core_decomposition(ctx.graph());
        let max = cores.degeneracy.max(1) as f64;
        DetectorOutput::scores_only(cores.user_core.iter().map(|&c| c as f64 / max).collect())
    }
}

impl Detector for Hits {
    fn name(&self) -> &'static str {
        "hits"
    }

    /// Hub scores are ℓ₂-normalized (and degree division only shrinks
    /// them), so they are already in `[0, 1]`; clamped for the contract.
    fn score(&self, ctx: &DetectContext<'_>) -> DetectorOutput {
        DetectorOutput::scores_only(clamped(self.score_users(ctx.graph())))
    }
}

impl Detector for DegreeBaseline {
    fn name(&self) -> &'static str {
        "degree"
    }

    /// Degree divided by the maximum degree.
    fn score(&self, ctx: &DetectContext<'_>) -> DetectorOutput {
        let raw = self.score_users(ctx.graph());
        let max = raw.iter().cloned().fold(0.0f64, f64::max).max(1.0);
        DetectorOutput::scores_only(raw.into_iter().map(|d| d / max).collect())
    }
}

/// Every baseline behind the trait, default-configured — the registry
/// benches and sweeps iterate instead of hard-coding method lists.
pub fn standard_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(Fraudar::default()),
        Box::new(Spoken::default()),
        Box::new(FBox::default()),
        Box::new(KCoreBaseline),
        Box::new(Hits::default()),
        Box::new(DegreeBaseline),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{BipartiteGraph, GraphBuilder, MerchantId, UserId};

    fn planted() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 8..60u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 23));
        }
        b.build()
    }

    #[test]
    fn registry_covers_all_six_methods() {
        let names: Vec<&str> = standard_detectors().iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["fraudar", "spoken", "fbox", "kcore", "hits", "degree"]
        );
    }

    #[test]
    fn every_detector_emits_unit_interval_scores() {
        let g = planted();
        let ctx = DetectContext::new(&g);
        for det in standard_detectors() {
            let out = det.score(&ctx);
            assert_eq!(out.scores.len(), g.num_users(), "{}", det.name());
            assert!(
                out.scores
                    .iter()
                    .all(|s| s.is_finite() && (0.0..=1.0).contains(s)),
                "{}",
                det.name()
            );
        }
    }

    #[test]
    fn fraudar_scores_follow_block_order() {
        let g = planted();
        let ctx = DetectContext::new(&g);
        let out = Fraudar::default().score(&ctx);
        let blocks = out.blocks.expect("fraudar reports blocks");
        assert!(!blocks.is_empty());
        // Users of the first (densest) block take the top score.
        let top = out.scores.iter().cloned().fold(0.0f64, f64::max);
        for u in &blocks[0].users {
            assert_eq!(out.scores[u.index()], top);
        }
    }
}
