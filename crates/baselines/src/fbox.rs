//! FBox (Shah et al., ICDM 2014) adapted to fraud scoring.
//!
//! FBox's insight is the dual of SpokEn's: attacks of *small enough scale*
//! do not register in the top-k singular subspace, so a node whose observed
//! degree is much larger than what its projection onto that subspace
//! explains is suspicious. For a binary adjacency row `aᵤ` (‖aᵤ‖² = degree)
//! we compute the **spectral residual ratio**
//!
//! ```text
//! r(u) = 1 − ‖V_kᵀ aᵤ‖² / ‖aᵤ‖²      ∈ [0, 1]
//! ```
//!
//! and score `s(u) = r(u) · ln(1 + d(u))` for nodes above a minimum degree:
//! high-degree nodes that the reconstruction cannot explain. The degree
//! factor keeps trivial one-purchase users (whose rows are never well
//! reconstructed) from flooding the top of the ranking.

use crate::adjacency_matrix;
use ensemfdet_graph::{BipartiteGraph, UserId};
use ensemfdet_linalg::{randomized_svd, CsrMatrix, SvdOptions};
use serde::{Deserialize, Serialize};

/// FBox configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FBoxConfig {
    /// SVD rank `k` — "a determinant factor of the reconstruction error"
    /// (the paper sets it alongside SpokEn's 25).
    pub components: usize,
    /// Users below this degree score 0 (no evidence either way).
    pub min_degree: usize,
    /// Randomized-SVD power iterations.
    pub power_iters: usize,
    /// RNG seed for the SVD sketch.
    pub seed: u64,
}

impl Default for FBoxConfig {
    fn default() -> Self {
        FBoxConfig {
            components: 25,
            min_degree: 2,
            power_iters: 2,
            seed: 0xFB0C,
        }
    }
}

/// The FBox detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct FBox {
    /// Configuration.
    pub config: FBoxConfig,
}

impl FBox {
    /// Builds a detector.
    pub fn new(config: FBoxConfig) -> Self {
        FBox { config }
    }

    /// Scores every user by degree-weighted spectral residual.
    pub fn score_users(&self, g: &BipartiteGraph) -> Vec<f64> {
        self.score_users_with(g, &adjacency_matrix(g))
    }

    /// [`score_users`](Self::score_users) against a pre-assembled
    /// adjacency matrix (which must describe `g`) — lets a hybrid scan
    /// share one matrix across every spectral component instead of each
    /// rebuilding it.
    pub fn score_users_with(&self, g: &BipartiteGraph, a: &CsrMatrix) -> Vec<f64> {
        debug_assert_eq!((a.rows(), a.cols()), (g.num_users(), g.num_merchants()));
        let nu = g.num_users();
        if g.num_edges() == 0 {
            return vec![0.0; nu];
        }
        let k = self.config.components.min(nu).min(g.num_merchants());
        if k == 0 {
            return vec![0.0; nu];
        }
        let svd = randomized_svd(
            a,
            k,
            SvdOptions {
                power_iters: self.config.power_iters,
                seed: self.config.seed,
                ..Default::default()
            },
        );

        let mut scores = vec![0.0f64; nu];
        let mut row = Vec::new();
        for (u, score) in scores.iter_mut().enumerate() {
            let degree = g.user_degree(UserId(u as u32));
            if degree < self.config.min_degree {
                continue;
            }
            // Assemble the (sparse) row densely once per user — rows are a
            // handful of entries, so project via the V columns directly.
            row.clear();
            row.extend(
                g.merchants_of(UserId(u as u32))
                    .map(|(v, _, w)| (v.index(), w)),
            );
            let norm_sq: f64 = row.iter().map(|&(_, w)| w * w).sum();
            let mut proj_sq = 0.0;
            for i in 0..svd.rank() {
                let dot: f64 = row.iter().map(|&(j, w)| svd.v[(j, i)] * w).sum();
                proj_sq += dot * dot;
            }
            let residual = (1.0 - proj_sq / norm_sq.max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
            *score = residual * (1.0 + degree as f64).ln();
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId};

    /// Big legitimate structure (captured by top components) + a small
    /// attack block (invisible to them) — FBox's home turf.
    fn small_attack_graph() -> BipartiteGraph {
        let mut b = GraphBuilder::new();
        // Legit community 1: 30 users × 6 merchants, dense.
        for u in 0..30u32 {
            for v in 0..6u32 {
                if (u + v) % 2 == 0 {
                    b.add_edge(UserId(u), MerchantId(v));
                }
            }
        }
        // Legit community 2: 30 users × 6 merchants.
        for u in 30..60u32 {
            for v in 6..12u32 {
                if (u + v) % 2 == 1 {
                    b.add_edge(UserId(u), MerchantId(v));
                }
            }
        }
        // Small attack: 5 users × 3 fresh merchants, complete.
        for u in 60..65u32 {
            for v in 12..15u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        b.build()
    }

    #[test]
    fn small_attack_scores_above_legit_users() {
        let g = small_attack_graph();
        let scores = FBox::new(FBoxConfig {
            components: 2,
            ..Default::default()
        })
        .score_users(&g);
        let attack_min = (60..65).map(|u| scores[u]).fold(f64::INFINITY, f64::min);
        let legit_mean: f64 = (0..60).map(|u| scores[u]).sum::<f64>() / 60.0;
        assert!(
            attack_min > legit_mean,
            "attack min {attack_min} vs legit mean {legit_mean}"
        );
    }

    #[test]
    fn full_rank_svd_explains_everything() {
        // With k = min(m, n) the residual is ~0 for every node.
        let g = small_attack_graph();
        let scores = FBox::new(FBoxConfig {
            components: 15,
            min_degree: 1,
            power_iters: 6,
            ..Default::default()
        })
        .score_users(&g);
        let max = scores.iter().cloned().fold(0.0f64, f64::max);
        assert!(max < 0.2, "residuals should vanish at full rank, max {max}");
    }

    #[test]
    fn low_degree_users_score_zero() {
        let g = small_attack_graph();
        let cfg = FBoxConfig {
            components: 3,
            min_degree: 100, // nobody qualifies
            ..Default::default()
        };
        let scores = FBox::new(cfg).score_users(&g);
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn empty_graph_scores_zero() {
        let g = BipartiteGraph::from_edges(4, 4, vec![]).unwrap();
        assert_eq!(FBox::default().score_users(&g), vec![0.0; 4]);
    }

    #[test]
    fn scores_are_finite_and_nonnegative() {
        let g = small_attack_graph();
        let scores = FBox::default().score_users(&g);
        assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
        assert_eq!(scores.len(), g.num_users());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = small_attack_graph();
        assert_eq!(
            FBox::default().score_users(&g),
            FBox::default().score_users(&g)
        );
    }
}
