//! Minimal `--key value` option parser.
//!
//! Deliberately tiny instead of a dependency: options are `--name value`
//! pairs or bare `--flag`s; every access is typed and reports which option
//! failed. Unknown options are rejected at access time via
//! [`Args::finish`], which commands call after reading everything they
//! understand.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Parsed options with consumption tracking.
#[derive(Debug)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
    consumed: RefCell<Vec<String>>,
}

impl Args {
    /// Parses `--key value` pairs and `--flag`s.
    ///
    /// A token starting with `--` followed by another `--token` (or
    /// nothing) is a flag; otherwise it pairs with the next token.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            let Some(name) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{tok}`"));
            };
            if name.is_empty() {
                return Err("bare `--` is not a valid option".to_string());
            }
            match argv.get(i + 1) {
                Some(next) if !next.starts_with("--") => {
                    if values.insert(name.to_string(), next.clone()).is_some() {
                        return Err(format!("option --{name} given twice"));
                    }
                    i += 2;
                }
                _ => {
                    flags.push(name.to_string());
                    i += 1;
                }
            }
        }
        Ok(Args {
            values,
            flags,
            consumed: RefCell::new(Vec::new()),
        })
    }

    /// `true` if the bare flag was present (e.g. `--help`).
    pub fn flag(&self, name: &str) -> bool {
        if self.flags.iter().any(|f| f == name) {
            self.consumed.borrow_mut().push(name.to_string());
            true
        } else {
            false
        }
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<String, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// Optional string option.
    pub fn get(&self, name: &str) -> Option<String> {
        self.consumed.borrow_mut().push(name.to_string());
        self.values.get(name).cloned()
    }

    /// Optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("option --{name}: cannot parse `{raw}`")),
        }
    }

    /// Required typed option.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self.require(name)?;
        raw.parse()
            .map_err(|_| format!("option --{name}: cannot parse `{raw}`"))
    }

    /// Rejects any option the command did not consume — catches typos like
    /// `--sample` for `--samples`.
    pub fn finish(&self) -> Result<(), String> {
        let consumed = self.consumed.borrow();
        for name in self.values.keys() {
            if !consumed.iter().any(|c| c == name) {
                return Err(format!("unknown option --{name}"));
            }
        }
        for name in &self.flags {
            if !consumed.iter().any(|c| c == name) {
                return Err(format!("unknown flag --{name}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn pairs_and_flags() {
        let a = parse(&["--graph", "g.edges", "--verbose", "--k", "30"]);
        assert_eq!(a.require("graph").unwrap(), "g.edges");
        assert!(a.flag("verbose"));
        assert_eq!(a.require_parsed::<usize>("k").unwrap(), 30);
        assert!(a.finish().is_ok());
    }

    #[test]
    fn missing_required_reports_name() {
        let a = parse(&[]);
        let err = a.require("graph").unwrap_err();
        assert!(err.contains("--graph"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get_or("samples", 80usize).unwrap(), 80);
        let a = parse(&["--samples", "12"]);
        assert_eq!(a.get_or("samples", 80usize).unwrap(), 12);
    }

    #[test]
    fn parse_errors_report_value() {
        let a = parse(&["--ratio", "abc"]);
        let err = a.get_or("ratio", 0.1f64).unwrap_err();
        assert!(err.contains("abc"));
    }

    #[test]
    fn positional_rejected() {
        let err =
            Args::parse(&["stray".to_string()]).unwrap_err();
        assert!(err.contains("positional"));
    }

    #[test]
    fn duplicate_option_rejected() {
        let err = Args::parse(
            &["--k".to_string(), "1".to_string(), "--k".to_string(), "2".to_string()],
        )
        .unwrap_err();
        assert!(err.contains("twice"));
    }

    #[test]
    fn finish_rejects_unconsumed() {
        let a = parse(&["--typo", "x"]);
        assert!(a.finish().unwrap_err().contains("--typo"));
        let a = parse(&["--mystery-flag"]);
        assert!(a.finish().unwrap_err().contains("--mystery-flag"));
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse(&["--quiet", "--k", "3"]);
        assert!(a.flag("quiet"));
        assert_eq!(a.require_parsed::<u32>("k").unwrap(), 3);
        assert!(a.finish().is_ok());
    }
}
