//! `ensemfdet detect` — run a detector and write flagged users.

use crate::args::Args;
use ensemfdet::{
    hybrid_scan_scores, DetectContext, EnsemFdet, EnsemFdetConfig, EnsembleOutcome,
    HybridScanScores, SamplePath, SamplingMethodConfig,
};
use ensemfdet_baselines::{DegreeBaseline, FBox, FBoxConfig, Fraudar, FraudarConfig, Hits, KCoreBaseline, Spoken, SpokenConfig};
use ensemfdet_graph::{io, BipartiteGraph};
use std::io::Write;

const HELP: &str = "\
ensemfdet detect — run a detector and write the flagged user ids

OPTIONS:
    --graph FILE          the edge list to scan (required)
    --method NAME         ensemfdet | fraudar | spoken | fbox | hits | kcore | degree
                          [default: ensemfdet]
    --out FILE            write flagged user ids, one per line
    --scores FILE         also write `user<TAB>score` for every user
  ensemfdet:
    --samples N           ensemble size N [default: 80]
    --ratio S             sample ratio S [default: 0.1]
    --threshold T         vote threshold [default: N/2]
    --sampling M          res | ons-user | ons-merchant | tns [default: res]
    --engine E            csr | bucket | bucket-batch | naive peeling engine
                          [default: csr]
    --sample-path P       mask | materialize sampling data path [default: mask]
    --seed N              RNG seed [default: 42]
    --workers W           worker threads for the sample pool; results are
                          identical for every W [default: 0 = auto]
    --timing              print the ensemble's wall-clock breakdown
    --scoring SPEC        fuse the vote fraction with spectral and k-core
                          components (hybrid scoring). SPEC is `hybrid`
                          for the defaults or `key=value` pairs:
                          vote|spectral|kcore (weights), norm=minmax|rank,
                          threshold, vote-floor|spectral-floor|kcore-floor,
                          components, seed. Flags the hybrid set and writes
                          hybrid scores to --scores.
  fraudar:
    --k N                 number of blocks [default: 30]
  spoken / fbox:
    --components N        SVD rank [default: 25]
  score methods (spoken, fbox, hits, kcore, degree):
    --top N               flag the N highest-scoring users [default: 100]
";

/// Per-user fraud scores for the score-based methods. `method` must be one
/// of `spoken`, `fbox`, `hits`, `degree`.
pub(crate) fn score_users(
    method: &str,
    g: &BipartiteGraph,
    args: &Args,
) -> Result<Vec<f64>, String> {
    match method {
        "spoken" => Ok(Spoken::new(SpokenConfig {
            components: args.get_or("components", 25)?,
            ..Default::default()
        })
        .score_users(g)),
        "fbox" => Ok(FBox::new(FBoxConfig {
            components: args.get_or("components", 25)?,
            ..Default::default()
        })
        .score_users(g)),
        "hits" => Ok(Hits::default().score_users(g)),
        "kcore" => Ok(KCoreBaseline.score_users(g)),
        "degree" => Ok(DegreeBaseline.score_users(g)),
        other => Err(format!("`{other}` is not a score-based method")),
    }
}

pub(crate) fn sampling_method(args: &Args) -> Result<SamplingMethodConfig, String> {
    match args.get("sampling").as_deref().unwrap_or("res") {
        "res" => Ok(SamplingMethodConfig::RandomEdge),
        "ons-user" => Ok(SamplingMethodConfig::OneSideUser),
        "ons-merchant" => Ok(SamplingMethodConfig::OneSideMerchant),
        "tns" => Ok(SamplingMethodConfig::TwoSide),
        other => Err(format!(
            "unknown sampling `{other}` (res|ons-user|ons-merchant|tns)"
        )),
    }
}

/// Ensemble timing: total wall-clock, per-sample mean/max, the speedup
/// the worker pool actually realized (sum of sample times / wall-clock), the
/// worker count with each worker's busy time, the per-stage CPU-time
/// split (sampling / detection / aggregation), and the sampling data path
/// with the bytes it materialized.
pub(crate) fn timing_summary(path: SamplePath, outcome: &EnsembleOutcome) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let n = outcome.samples.len().max(1);
    let total = outcome.total_sample_time();
    let busy_max = outcome
        .worker_times
        .iter()
        .max()
        .copied()
        .unwrap_or_default();
    let busy_mean =
        outcome.worker_times.iter().map(|d| ms(*d)).sum::<f64>() / outcome.workers.max(1) as f64;
    format!(
        "timing: {:.1} ms wall-clock over {} samples; per-sample mean {:.1} ms, max {:.1} ms; realized speedup {:.1}x\n\
         workers: {} (busy mean {:.1} ms, max {:.1} ms)\n\
         stages: sampling {:.1} ms, detection {:.1} ms, aggregation {:.1} ms (CPU time summed over samples)\n\
         sample path: {path}, {} bytes materialized ({:.0} per sample)",
        ms(outcome.elapsed),
        n,
        ms(total) / n as f64,
        ms(outcome.max_sample_time()),
        ms(total) / ms(outcome.elapsed).max(1e-9),
        outcome.workers,
        busy_mean,
        ms(busy_max),
        ms(outcome.stages.sampling),
        ms(outcome.stages.detection),
        ms(outcome.stages.aggregation),
        outcome.sample_bytes(),
        outcome.sample_bytes() as f64 / n as f64,
    )
}

pub(crate) fn ensemfdet_config(args: &Args) -> Result<EnsemFdetConfig, String> {
    Ok(EnsemFdetConfig {
        num_samples: args.get_or("samples", 80)?,
        sample_ratio: args.get_or("ratio", 0.1)?,
        method: sampling_method(args)?,
        engine: args
            .get("engine")
            .map(|e| e.parse())
            .transpose()?
            .unwrap_or_default(),
        path: args
            .get("sample-path")
            .map(|p| p.parse())
            .transpose()?
            .unwrap_or_default(),
        seed: args.get_or("seed", 42)?,
        scoring: args
            .get("scoring")
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or_default(),
        ..Default::default()
    })
}

/// Runs the hybrid scoring pass on the parent graph when the config asks
/// for it. Shared by `detect` and `sweep`.
pub(crate) fn hybrid_pass(
    g: &BipartiteGraph,
    outcome: &EnsembleOutcome,
    cfg: &EnsemFdetConfig,
) -> Option<HybridScanScores> {
    cfg.scoring.enabled.then(|| {
        let ctx = DetectContext::new(g);
        hybrid_scan_scores(&ctx, &outcome.votes, &cfg.scoring)
    })
}

/// One-line human summary of a hybrid pass.
pub(crate) fn hybrid_summary(scores: &HybridScanScores) -> String {
    let cfg = &scores.config;
    format!(
        "hybrid: {} users at threshold {} (weights vote={} spectral={} kcore={}, {} normalization)",
        scores.hybrid_flagged.len(),
        cfg.hybrid_threshold,
        cfg.vote_weight,
        cfg.spectral_weight,
        cfg.kcore_weight,
        cfg.normalization,
    )
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let path = args.require("graph")?;
    let method = args.get("method").unwrap_or_else(|| "ensemfdet".into());
    let out_path = args.get("out");
    let scores_path = args.get("scores");

    let g = io::load_edge_list(&path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let mut timing_note: Option<String> = None;
    let mut hybrid_note: Option<String> = None;
    let (detected, scores): (Vec<u32>, Option<Vec<f64>>) = match method.as_str() {
        "ensemfdet" => {
            let cfg = ensemfdet_config(args)?;
            let threshold: u32 = args.get_or("threshold", (cfg.num_samples as u32).div_ceil(2))?;
            let workers: usize = args.get_or("workers", 0)?;
            let timing = args.flag("timing");
            args.finish()?;
            let outcome = EnsemFdet::with_workers(cfg, workers).detect(&g);
            if timing {
                timing_note = Some(timing_summary(cfg.path, &outcome));
            }
            if let Some(hybrid) = hybrid_pass(&g, &outcome, &cfg) {
                // The hybrid set and fused scores replace the vote ones
                // in --out / --scores; the summary names both counts.
                hybrid_note = Some(hybrid_summary(&hybrid));
                let detected = hybrid.hybrid_flagged.iter().map(|u| u.0).collect();
                (detected, Some(hybrid.hybrid))
            } else {
                let detected = outcome
                    .votes
                    .detected_users(threshold.max(1))
                    .into_iter()
                    .map(|u| u.0)
                    .collect();
                (detected, Some(outcome.votes.user_scores()))
            }
        }
        "fraudar" => {
            let k: usize = args.get_or("k", 30)?;
            args.finish()?;
            let result = Fraudar::new(FraudarConfig {
                k,
                ..Default::default()
            })
            .run(&g);
            (result.detected_users_after(k), None)
        }
        m @ ("spoken" | "fbox" | "hits" | "kcore" | "degree") => {
            let top: usize = args.get_or("top", 100)?;
            let scores = score_users(m, &g, args)?;
            args.finish()?;
            let mut order: Vec<u32> = (0..g.num_users() as u32).collect();
            order.sort_by(|&a, &b| {
                scores[b as usize]
                    .partial_cmp(&scores[a as usize])
                    .expect("finite scores")
                    .then(a.cmp(&b))
            });
            let detected = order
                .into_iter()
                .take(top)
                .filter(|&u| scores[u as usize] > 0.0)
                .collect();
            (detected, Some(scores))
        }
        other => return Err(format!("unknown method `{other}`\n\n{HELP}")),
    };

    if let Some(p) = &out_path {
        io::save_labels(&detected, p).map_err(|e| format!("cannot write {p}: {e}"))?;
    }
    if let Some(p) = &scores_path {
        let scores = scores
            .as_ref()
            .ok_or_else(|| format!("method `{method}` does not produce per-user scores"))?;
        let f = std::fs::File::create(p).map_err(|e| format!("cannot write {p}: {e}"))?;
        let mut w = std::io::BufWriter::new(f);
        for (u, s) in scores.iter().enumerate() {
            writeln!(w, "{u}\t{s}").map_err(|e| format!("cannot write {p}: {e}"))?;
        }
    }

    let mut report = format!(
        "{method}: detected {} of {} users on {path}",
        detected.len(),
        g.num_users()
    );
    if let Some(h) = hybrid_note {
        report.push('\n');
        report.push_str(&h);
    }
    if let Some(t) = timing_note {
        report.push('\n');
        report.push_str(&t);
    }
    if let Some(p) = out_path {
        report.push_str(&format!("\nflagged ids written to {p}"));
    }
    if let Some(p) = scores_path {
        report.push_str(&format!("\nscores written to {p}"));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn graph_file() -> String {
        let dir = std::env::temp_dir().join("ensemfdet_cli_detect");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 8..60u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 20));
        }
        io::save_edge_list(&b.build(), &path).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn ensemfdet_detects_block() {
        let gf = graph_file();
        let out = run(&args(&[
            "--graph", &gf, "--samples", "10", "--ratio", "0.5", "--threshold", "8",
        ]))
        .unwrap();
        assert!(out.contains("detected"));
    }

    #[test]
    fn scoring_flag_runs_hybrid_and_reports() {
        let gf = graph_file();
        let dir = std::env::temp_dir().join("ensemfdet_cli_detect");
        let scores = dir.join("hybrid.tsv");
        let out = run(&args(&[
            "--graph",
            &gf,
            "--samples",
            "10",
            "--ratio",
            "0.5",
            "--scoring",
            "vote=0.6,spectral=0.25,kcore=0.15,threshold=0.5",
            "--scores",
            scores.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("hybrid:"), "{out}");
        assert!(out.contains("minmax normalization"), "{out}");
        // Written scores are the fused hybrid, all in [0, 1].
        let content = std::fs::read_to_string(&scores).unwrap();
        assert_eq!(content.lines().count(), 60);
        for line in content.lines() {
            let s: f64 = line.split('\t').nth(1).unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&s), "{line}");
        }
    }

    #[test]
    fn scoring_flag_determinism_and_validation() {
        let gf = graph_file();
        let base = &["--graph", gf.as_str(), "--samples", "8", "--ratio", "0.5"];
        let one = run(&args(&[base as &[_], &["--scoring", "hybrid"]].concat())).unwrap();
        let two = run(&args(&[base as &[_], &["--scoring", "hybrid"]].concat())).unwrap();
        assert_eq!(one, two, "hybrid scans must be deterministic");
        let err =
            run(&args(&[base as &[_], &["--scoring", "vote=0,spectral=0,kcore=0"]].concat()))
                .unwrap_err();
        assert!(err.contains("all be zero"), "{err}");
        let err = run(&args(&[base as &[_], &["--scoring", "banana=1"]].concat())).unwrap_err();
        assert!(err.contains("unknown scoring key"), "{err}");
    }

    #[test]
    fn timing_flag_reports_breakdown() {
        let gf = graph_file();
        let out = run(&args(&[
            "--graph", &gf, "--samples", "6", "--ratio", "0.5", "--timing",
        ]))
        .unwrap();
        assert!(out.contains("wall-clock over 6 samples"), "{out}");
        assert!(out.contains("per-sample mean"), "{out}");
        assert!(out.contains("stages: sampling"), "{out}");
        assert!(out.contains("sample path: mask"), "{out}");
        assert!(out.contains("bytes materialized"), "{out}");
        assert!(out.contains("workers: "), "{out}");
    }

    #[test]
    fn workers_flag_is_result_invariant_and_reported() {
        let gf = graph_file();
        let base = &["--graph", gf.as_str(), "--samples", "6", "--ratio", "0.5"];
        let one = run(&args(&[base as &[_], &["--workers", "1"]].concat())).unwrap();
        let four = run(&args(&[base as &[_], &["--workers", "4"]].concat())).unwrap();
        assert_eq!(one, four, "worker count changed the flagged set");
        // --timing names the pinned pool size.
        let timed = run(&args(
            &[base as &[_], &["--workers", "2", "--timing"]].concat(),
        ))
        .unwrap();
        assert!(timed.contains("workers: 2"), "{timed}");
    }

    #[test]
    fn sample_path_flag_selects_path_and_agrees() {
        let gf = graph_file();
        let base = &["--graph", gf.as_str(), "--samples", "6", "--ratio", "0.5"];
        let mask =
            run(&args(&[base as &[_], &["--sample-path", "mask"]].concat())).unwrap();
        let mat =
            run(&args(&[base as &[_], &["--sample-path", "materialize"]].concat())).unwrap();
        assert_eq!(mask, mat, "paths must flag identical users");
        let err =
            run(&args(&[base as &[_], &["--sample-path", "mmap"]].concat())).unwrap_err();
        assert!(err.contains("unknown sample path"), "{err}");
        // --timing reports which path ran.
        let timed = run(&args(
            &[base as &[_], &["--sample-path", "materialize", "--timing"]].concat(),
        ))
        .unwrap();
        assert!(timed.contains("sample path: materialize"), "{timed}");
    }

    #[test]
    fn engine_flag_selects_engine_and_agrees() {
        let gf = graph_file();
        let base = &["--graph", gf.as_str(), "--samples", "6", "--ratio", "0.5"];
        let csr = run(&args(&[base as &[_], &["--engine", "csr"]].concat())).unwrap();
        for engine in ["naive", "bucket", "bucket-batch"] {
            let other = run(&args(&[base as &[_], &["--engine", engine]].concat())).unwrap();
            assert_eq!(csr, other, "{engine} must flag identical users");
        }
        let err = run(&args(&[base as &[_], &["--engine", "warp"]].concat())).unwrap_err();
        assert!(err.contains("unknown engine"), "{err}");
    }

    #[test]
    fn every_method_runs() {
        let gf = graph_file();
        let out = run(&args(&["--graph", &gf, "--method", "fraudar", "--k", "5"])).unwrap();
        assert!(out.contains("detected"), "fraudar: {out}");
        for m in ["spoken", "fbox", "hits", "kcore", "degree"] {
            let out = run(&args(&["--graph", &gf, "--method", m, "--top", "8"])).unwrap();
            assert!(out.contains("detected"), "{m}: {out}");
        }
    }

    #[test]
    fn out_and_scores_files_are_written() {
        let gf = graph_file();
        let dir = std::env::temp_dir().join("ensemfdet_cli_detect");
        let flagged = dir.join("flagged.txt");
        let scores = dir.join("scores.tsv");
        run(&args(&[
            "--graph",
            &gf,
            "--method",
            "degree",
            "--top",
            "5",
            "--out",
            flagged.to_str().unwrap(),
            "--scores",
            scores.to_str().unwrap(),
        ]))
        .unwrap();
        let flagged_ids = io::load_labels(&flagged).unwrap();
        assert_eq!(flagged_ids.len(), 5);
        let scored = std::fs::read_to_string(&scores).unwrap();
        assert_eq!(scored.lines().count(), 60);
    }

    #[test]
    fn unknown_method_rejected() {
        let gf = graph_file();
        let err = run(&args(&["--graph", &gf, "--method", "magic"])).unwrap_err();
        assert!(err.contains("magic"));
    }

    #[test]
    fn unknown_option_rejected() {
        let gf = graph_file();
        let err = run(&args(&["--graph", &gf, "--threshhold", "3"])).unwrap_err();
        assert!(err.contains("threshhold"));
    }

    #[test]
    fn fraudar_scores_request_is_an_error() {
        let gf = graph_file();
        let err = run(&args(&[
            "--graph", &gf, "--method", "fraudar", "--scores", "/tmp/s.tsv",
        ]))
        .unwrap_err();
        assert!(err.contains("does not produce"));
    }
}
