//! `ensemfdet ingest` — bulk-load a delimited transaction log.
//!
//! The log format is one `user,merchant[,amount]` record per line (blank
//! lines and `#` comments skipped). Three sinks:
//!
//! * default: load the file into a weighted bipartite graph and report
//!   its shape — a dry run that validates the log;
//! * `--url`: stream the file to a running service's `POST
//!   /v1/transactions` as `text/csv`;
//! * `--detect`: run the ensemble directly on the amount-weighted graph
//!   and print (or `--out`-write) the flagged account keys.
//!
//! Loading is chunk-parallel (`--workers`), but assigned ids, edge
//! weights, and every detection result are bit-identical for every worker
//! count — the knob is wall-clock only.

use crate::args::Args;
use crate::cmd_detect::{ensemfdet_config, timing_summary};
use ensemfdet::EnsemFdet;
use ensemfdet_graph::loader::{load_transactions_path, LoadOptions};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const HELP: &str = "\
ensemfdet ingest — bulk-load a `user,merchant[,amount]` transaction log

OPTIONS:
    --file FILE           the delimited transaction log (required)
    --delimiter C         field delimiter, a single character or `tab`
                          [default: ,]
    --workers N           worker threads for chunked parsing (and the
                          detection pool under --detect); ids, weights and
                          results are identical for every N
                          [default: 0 = auto]
    --timing              print load duration, records/sec, arena bytes
  sinks (default: load only, report the graph shape):
    --url URL             POST the log as text/csv to a running service,
                          e.g. http://127.0.0.1:7878
    --detect              run the ensemble on the amount-weighted graph
  with --detect:
    --out FILE            write flagged account keys, one per line
    --samples N           ensemble size [default: 80]
    --ratio S             sample ratio [default: 0.1]
    --threshold T         vote threshold [default: N/2]
    --seed N              RNG seed [default: 42]
";

/// Minimal raw-socket HTTP POST; returns `(status, body)`.
///
/// The service speaks plain HTTP/1.1 with `connection: close` semantics,
/// so a blocking read-to-end after the request is the whole protocol —
/// the same roundtrip the bench suite's service smoke test uses.
fn http_post_csv(url: &str, body: &[u8]) -> Result<(u16, String), String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (host, mut path) = match rest.find('/') {
        Some(i) => rest.split_at(i),
        None => (rest, "/v1/transactions"),
    };
    if path.is_empty() || path == "/" {
        path = "/v1/transactions";
    }
    let mut stream =
        TcpStream::connect(host).map_err(|e| format!("cannot connect to {host}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("socket timeout: {e}"))?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nhost: {host}\r\ncontent-type: text/csv\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("cannot send to {host}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("cannot read response from {host}: {e}"))?;
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|s| s.get(..3))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed response from {host}: {raw}"))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.trim().to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

fn parse_delimiter(raw: Option<String>) -> Result<char, String> {
    match raw.as_deref() {
        None => Ok(','),
        Some("tab") | Some("\\t") => Ok('\t'),
        Some(s) => {
            let mut chars = s.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => Ok(c),
                _ => Err(format!("option --delimiter: `{s}` is not a single character")),
            }
        }
    }
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let file = args.require("file")?;
    let delimiter = parse_delimiter(args.get("delimiter"))?;
    let workers: usize = args.get_or("workers", 0)?;
    let timing = args.flag("timing");
    let url = args.get("url");
    let detect = args.flag("detect");
    if url.is_some() && detect {
        return Err("--url and --detect are mutually exclusive sinks".to_string());
    }

    if let Some(url) = url {
        // The service's text/csv parser is comma-delimited.
        if delimiter != ',' {
            return Err("--url ingestion only supports the default `,` delimiter".to_string());
        }
        args.finish()?;
        let body = std::fs::read(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
        let started = Instant::now();
        let (status, payload) = http_post_csv(&url, &body)?;
        if status != 200 {
            return Err(format!("service rejected the log ({status}): {payload}"));
        }
        let mut report = format!("service accepted {file}: {payload}");
        if timing {
            report.push_str(&format!(
                "\ningest: {:.1} ms round-trip, {} bytes posted",
                started.elapsed().as_secs_f64() * 1e3,
                body.len()
            ));
        }
        return Ok(report);
    }

    let options = LoadOptions { delimiter, workers };
    let started = Instant::now();
    let loaded =
        load_transactions_path(&file, &options).map_err(|e| format!("cannot load {file}: {e}"))?;
    let load_elapsed = started.elapsed();

    let mut report = format!(
        "loaded {}: {} records on {} lines → {} users × {} merchants, {} weighted edges",
        file,
        loaded.records,
        loaded.lines,
        loaded.graph.num_users(),
        loaded.graph.num_merchants(),
        loaded.graph.num_edges(),
    );
    if timing {
        let secs = load_elapsed.as_secs_f64();
        report.push_str(&format!(
            "\nload: {:.1} ms ({:.0} records/sec, {} workers requested, {} arena bytes)",
            secs * 1e3,
            loaded.records as f64 / secs.max(1e-9),
            workers,
            loaded.interner.arena_bytes(),
        ));
    }

    if detect {
        let cfg = ensemfdet_config(args)?;
        let threshold: u32 = args.get_or("threshold", (cfg.num_samples as u32).div_ceil(2))?;
        let out_path = args.get("out");
        args.finish()?;
        let outcome = EnsemFdet::with_workers(cfg, workers).detect(&loaded.graph);
        let detected = outcome.votes.detected_users(threshold.max(1));
        let keys = loaded.interner.user_keys_of(&detected);
        report.push_str(&format!(
            "\nensemfdet: detected {} of {} accounts",
            keys.len(),
            loaded.graph.num_users()
        ));
        if timing {
            report.push('\n');
            report.push_str(&timing_summary(cfg.path, &outcome));
        }
        if let Some(p) = &out_path {
            let text: String = keys.iter().map(|k| format!("{k}\n")).collect();
            std::fs::write(p, text).map_err(|e| format!("cannot write {p}: {e}"))?;
            report.push_str(&format!("\nflagged accounts written to {p}"));
        } else if !keys.is_empty() {
            report.push_str(&format!("\nflagged: {}", keys.join(", ")));
        }
    } else {
        args.finish()?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn log_file(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("ensemfdet_cli_ingest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_str().unwrap().to_string()
    }

    /// A dense 8×8 ring on top of sparse background traffic.
    fn ring_log() -> String {
        let mut s = String::from("# synthetic ring\n");
        for b in 0..8 {
            for m in 0..8 {
                s.push_str(&format!("bot-{b},ring-{m},9.99\n"));
            }
        }
        for p in 0..80 {
            s.push_str(&format!("pin-{p},store-{},3.50\n", p % 40));
        }
        log_file("ring.csv", &s)
    }

    #[test]
    fn dry_run_reports_graph_shape() {
        let f = log_file("shape.csv", "a,x,2\na,x,3\nb,y\n");
        let out = run(&args(&["--file", &f, "--timing"])).unwrap();
        assert!(out.contains("3 records"), "{out}");
        assert!(out.contains("2 users × 2 merchants, 2 weighted edges"), "{out}");
        assert!(out.contains("records/sec"), "{out}");
        assert!(out.contains("arena bytes"), "{out}");
    }

    #[test]
    fn tab_delimiter_is_supported() {
        let f = log_file("tabs.tsv", "a\tx\t2\nb\ty\n");
        let out = run(&args(&["--file", &f, "--delimiter", "tab"])).unwrap();
        assert!(out.contains("2 records"), "{out}");
        let err = run(&args(&["--file", &f, "--delimiter", "ab"])).unwrap_err();
        assert!(err.contains("single character"), "{err}");
    }

    #[test]
    fn malformed_log_reports_its_line() {
        let f = log_file("bad.csv", "a,x\nnot-a-record\n");
        let err = run(&args(&["--file", &f])).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn detect_flags_the_ring_and_is_worker_invariant() {
        let f = ring_log();
        let base = &[
            "--file", f.as_str(), "--detect", "--samples", "12", "--ratio", "0.6",
            "--threshold", "10", "--seed", "7",
        ];
        let one = run(&args(&[base as &[_], &["--workers", "1"]].concat())).unwrap();
        let four = run(&args(&[base as &[_], &["--workers", "4"]].concat())).unwrap();
        assert!(one.contains("bot-"), "{one}");
        assert!(!one.contains("pin-"), "{one}");
        assert_eq!(
            one.replace("1 workers requested", "N")
                .replace("4 workers requested", "N"),
            four.replace("1 workers requested", "N")
                .replace("4 workers requested", "N"),
            "worker count changed the flagged accounts"
        );
    }

    #[test]
    fn detect_out_writes_account_keys() {
        let f = ring_log();
        let dir = std::env::temp_dir().join("ensemfdet_cli_ingest");
        let out_file = dir.join("flagged.txt");
        run(&args(&[
            "--file", &f, "--detect", "--samples", "12", "--ratio", "0.6",
            "--threshold", "10", "--seed", "7", "--out", out_file.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out_file).unwrap();
        assert!(text.lines().all(|l| l.starts_with("bot-")), "{text}");
        assert_eq!(text.lines().count(), 8, "{text}");
    }

    #[test]
    fn url_and_detect_are_exclusive() {
        let f = ring_log();
        let err = run(&args(&["--file", &f, "--detect", "--url", "http://x"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn url_sink_posts_csv_to_a_live_service() {
        use ensemfdet::{EnsemFdetConfig, MonitorConfig};
        use ensemfdet_service::{Api, ApiConfig, Server};

        let api = Api::new(ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig::default(),
                scan_interval: 1_000_000,
                alert_threshold: 10,
                min_transactions: 0,
            },
            ..Default::default()
        });
        let server = Server::bind("127.0.0.1:0", api).unwrap().start().unwrap();
        let url = format!("http://{}", server.addr());

        let f = ring_log();
        let out = run(&args(&["--file", &f, "--url", &url, "--timing"])).unwrap();
        assert!(out.contains("service accepted"), "{out}");
        assert!(out.contains("\"ingested\":144"), "{out}");
        assert!(out.contains("round-trip"), "{out}");

        // A malformed log is rejected with its line number, not ingested.
        let bad = log_file("bad_url.csv", "a,x\noops\n");
        let err = run(&args(&["--file", &bad, "--url", &url])).unwrap_err();
        assert!(err.contains("rejected"), "{err}");
        assert!(err.contains("\"line\":2"), "{err}");
        server.shutdown();
    }
}
