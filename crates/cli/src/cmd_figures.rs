//! `ensemfdet figures` — render SVG figures from experiment artifacts.

use crate::args::Args;

const HELP: &str = "\
ensemfdet figures — render results/*.json into SVG figures

OPTIONS:
    --results DIR    artifact directory [default: results]
";

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let dir = args.get("results").unwrap_or_else(|| "results".into());
    args.finish()?;
    let written = ensemfdet_viz::figures::render_all(std::path::Path::new(&dir))
        .map_err(|e| format!("render failed: {e}"))?;
    if written.is_empty() {
        Ok(format!(
            "no renderable artifacts in {dir}/ — run the bench experiments first\n\
             (cargo run --release -p ensemfdet-bench --bin run_all)"
        ))
    } else {
        Ok(written.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn renders_from_custom_dir() {
        let dir = std::env::temp_dir().join("ensemfdet_cli_figures");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("fig1_block_scores.json"),
            r#"[{"sample": 0, "scores": [0.5, 0.2], "k_hat": 1}]"#,
        )
        .unwrap();
        let out = run(&args(&["--results", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("fig1.svg"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_reports_gracefully() {
        let dir = std::env::temp_dir().join("ensemfdet_cli_figures_empty");
        std::fs::create_dir_all(&dir).unwrap();
        let out = run(&args(&["--results", dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("no renderable artifacts"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
