//! `ensemfdet compare` — all methods head-to-head on one dataset.

use crate::args::Args;
use crate::cmd_detect::{ensemfdet_config, score_users};
use ensemfdet::EnsemFdet;
use ensemfdet_baselines::{Fraudar, FraudarConfig};
use ensemfdet_eval::{time_it, PrCurve, RocCurve, Table};
use ensemfdet_graph::io;

const HELP: &str = "\
ensemfdet compare — run every detector on a labelled dataset and tabulate

OPTIONS:
    --graph FILE     the edge list to scan (required)
    --labels FILE    blacklist user ids (required)
    --samples N      EnsemFDet ensemble size [default: 40]
    --ratio S        EnsemFDet sample ratio [default: 0.1]
    --sampling M     res | ons-user | ons-merchant | tns [default: res]
    --seed N         RNG seed [default: 42]
    --k N            Fraudar blocks [default: 30]
    --components N   SVD rank for SpokEn/FBox [default: 25]
    --json FILE      also write the summary as JSON
";

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let graph_path = args.require("graph")?;
    let labels_path = args.require("labels")?;
    let json_path = args.get("json");

    let g = io::load_edge_list(&graph_path)
        .map_err(|e| format!("cannot read {graph_path}: {e}"))?;
    let blacklist =
        io::load_labels(&labels_path).map_err(|e| format!("cannot read {labels_path}: {e}"))?;
    let mut labels = vec![false; g.num_users()];
    for &u in &blacklist {
        *labels
            .get_mut(u as usize)
            .ok_or_else(|| format!("label id {u} exceeds the graph's {} users", g.num_users()))? =
            true;
    }

    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut table = Table::new(&["method", "best F1", "AUC-PR", "AUC-ROC", "max TPR jump", "time"]);

    // EnsemFDet.
    let cfg = {
        let mut c = ensemfdet_config(args)?;
        c.num_samples = args.get_or("samples", 40)?;
        c
    };
    let ((pr, roc), dt) = time_it(|| {
        let outcome = EnsemFdet::new(cfg).detect(&g);
        let sets: Vec<(f64, Vec<u32>)> = (1..=outcome.votes.max_user_votes())
            .map(|t| {
                (
                    t as f64,
                    outcome
                        .votes
                        .detected_users(t)
                        .into_iter()
                        .map(|u| u.0)
                        .collect(),
                )
            })
            .collect();
        (
            PrCurve::from_threshold_sets(sets.iter().map(|(t, d)| (*t, d.as_slice())), &labels),
            RocCurve::from_threshold_sets(sets.iter().map(|(t, d)| (*t, d.as_slice())), &labels),
        )
    });
    push(&mut table, &mut rows, "ensemfdet", &pr, &roc, dt);

    // Fraudar.
    let k: usize = args.get_or("k", 30)?;
    let ((pr, roc), dt) = time_it(|| {
        let result = Fraudar::new(FraudarConfig {
            k,
            ..Default::default()
        })
        .run(&g);
        let points = result.operating_points();
        (
            PrCurve::from_threshold_sets(
                points.iter().map(|(k, d)| (*k as f64, d.as_slice())),
                &labels,
            ),
            RocCurve::from_threshold_sets(
                points.iter().map(|(k, d)| (*k as f64, d.as_slice())),
                &labels,
            ),
        )
    });
    push(&mut table, &mut rows, "fraudar", &pr, &roc, dt);

    // Score-based methods.
    for m in ["spoken", "fbox", "hits", "kcore", "degree"] {
        let (scores, dt) = time_it(|| score_users(m, &g, args));
        let scores = scores?;
        let pr = PrCurve::from_scores(&scores, &labels);
        let roc = RocCurve::from_scores(&scores, &labels);
        push(&mut table, &mut rows, m, &pr, &roc, dt);
    }
    args.finish()?;

    if let Some(p) = &json_path {
        ensemfdet_eval::write_json(&rows, p).map_err(|e| format!("cannot write {p}: {e}"))?;
    }
    let mut report = table.render();
    if let Some(p) = json_path {
        report.push_str(&format!("\nsummary written to {p}\n"));
    }
    Ok(report)
}

fn push(
    table: &mut Table,
    rows: &mut Vec<serde_json::Value>,
    name: &str,
    pr: &PrCurve,
    roc: &RocCurve,
    time: std::time::Duration,
) {
    table.row(&[
        name.to_string(),
        format!("{:.3}", pr.best_f1()),
        format!("{:.3}", pr.auc_pr()),
        format!("{:.3}", roc.auc()),
        format!("{:.3}", roc.max_tpr_jump()),
        format!("{:.2?}", time),
    ]);
    rows.push(serde_json::json!({
        "method": name,
        "best_f1": pr.best_f1(),
        "auc_pr": pr.auc_pr(),
        "auc_roc": roc.auc(),
        "max_tpr_jump": roc.max_tpr_jump(),
        "seconds": time.as_secs_f64(),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn dataset_files() -> (String, String) {
        let dir = std::env::temp_dir().join("ensemfdet_cli_compare");
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("g.edges");
        let lpath = dir.join("g.labels");
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 8..80u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 30));
        }
        io::save_edge_list(&b.build(), &gpath).unwrap();
        io::save_labels(&(0..8).collect::<Vec<u32>>(), &lpath).unwrap();
        (
            gpath.to_str().unwrap().to_string(),
            lpath.to_str().unwrap().to_string(),
        )
    }

    #[test]
    fn compares_all_methods() {
        let (g, l) = dataset_files();
        let out = run(&args(&[
            "--graph", &g, "--labels", &l, "--samples", "8", "--ratio", "0.5", "--k", "3",
        ]))
        .unwrap();
        assert!(out.contains("ensemfdet"));
        assert!(out.contains("fraudar"));
        assert!(out.contains("spoken"));
        assert!(out.contains("degree"));
    }

    #[test]
    fn json_output() {
        let (g, l) = dataset_files();
        let dir = std::env::temp_dir().join("ensemfdet_cli_compare");
        let json = dir.join("summary.json");
        run(&args(&[
            "--graph",
            &g,
            "--labels",
            &l,
            "--samples",
            "6",
            "--ratio",
            "0.5",
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        let content = std::fs::read_to_string(&json).unwrap();
        assert!(content.contains("best_f1"));
    }
}
