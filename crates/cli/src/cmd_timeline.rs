//! `ensemfdet timeline` — generate a multi-period drifting campaign.

use crate::args::Args;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate_timeline, BehaviorDrift, TimelineConfig};

const HELP: &str = "\
ensemfdet timeline — generate a sequence of drifting campaign periods

Writes STEM.p0.edges/.labels, STEM.p1.edges/.labels, … Fraud behaviour
drifts period over period (rings thin out); account spaces are independent,
as in the paper's time-separated datasets.

OPTIONS:
    --out STEM            output stem (required)
    --preset jd1|jd2|jd3  base dataset model [default: jd1]
    --scale N             population divisor [default: 200]
    --periods N           number of periods [default: 4]
    --density-factor F    per-period ring-density multiplier [default: 0.8]
    --camouflage-step N   extra camouflage edges per period [default: 0]
    --seed N              RNG seed [default: 42]
";

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let out = args.require("out")?;
    let preset = args.get("preset").unwrap_or_else(|| "jd1".into());
    let which = match preset.as_str() {
        "jd1" => JdDataset::Jd1,
        "jd2" => JdDataset::Jd2,
        "jd3" => JdDataset::Jd3,
        other => return Err(format!("unknown preset `{other}` (jd1|jd2|jd3)")),
    };
    let scale: u32 = args.get_or("scale", 200)?;
    let periods: usize = args.get_or("periods", 4)?;
    let cfg = TimelineConfig {
        base: jd_preset(which, scale, args.get_or("seed", 42)?),
        periods,
        drift: BehaviorDrift {
            density_factor: args.get_or("density-factor", 0.8)?,
            camouflage_step: args.get_or("camouflage-step", 0)?,
        },
    };
    args.finish()?;

    let datasets = generate_timeline(&cfg);
    let mut lines = Vec::new();
    for (p, ds) in datasets.iter().enumerate() {
        let stem = format!("{out}.p{p}");
        ds.save(&stem).map_err(|e| format!("cannot write {stem}: {e}"))?;
        let (users, fraud, merchants, edges) = ds.table1_row();
        lines.push(format!(
            "period {p}: {stem}.edges — {users} users ({fraud} blacklisted), {merchants} merchants, {edges} edges"
        ));
    }
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn writes_every_period() {
        let dir = std::env::temp_dir().join("ensemfdet_cli_timeline");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("tl").to_str().unwrap().to_string();
        let out = run(&args(&[
            "--out", &stem, "--scale", "400", "--periods", "3",
        ]))
        .unwrap();
        assert_eq!(out.lines().count(), 3);
        for p in 0..3 {
            assert!(std::path::Path::new(&format!("{stem}.p{p}.edges")).exists());
            assert!(std::path::Path::new(&format!("{stem}.p{p}.labels")).exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_flag() {
        assert!(run(&args(&["--help"])).unwrap().contains("OPTIONS"));
    }
}
