//! `ensemfdet monitor` — replay a ramping campaign through the live
//! pipeline, scanning after every epoch.

use crate::args::Args;
use ensemfdet::pipeline::{IngestBuffer, ScanRunner, SnapshotStore};
use ensemfdet::{EnsemFdetConfig, IncrementalPolicy, SamplingMethodConfig};
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::ramp_timeline;
use ensemfdet_graph::{MerchantId, UserId};

const HELP: &str = "\
ensemfdet monitor — replay a ramping fraud campaign epoch by epoch

Generates one dataset and splits it into a base batch plus --epochs
batches of fraud-ring edges ramping in (the campaign builds cover first,
then lights up). Each epoch is ingested and scanned: full scans by
default, incremental dirty-sample reuse with --follow. The flagged set is
identical either way — the table shows how much work each epoch took and
how the incremental path's reuse tracks the delta. See docs/MONITORING.md
for reading the columns.

OPTIONS:
    --preset jd1|jd2|jd3  dataset model [default: jd1]
    --scale N             population divisor [default: 200]
    --epochs N            ramp epochs after the base batch [default: 6]
    --follow              scan incrementally (dirty-sample reuse)
    --max-touched F       delta fraction beyond which --follow re-peels
                          everything [default: 0.1]
    --samples N           ensemble size [default: 20]
    --ratio S             sample ratio [default: 0.2]
    --sampling M          res | ons-user | ons-merchant | tns
                          [default: ons-user — node-subset draws survive
                          edge growth; res redraws every sample whenever
                          the edge count changes]
    --engine E            csr | bucket | bucket-batch | naive [default: csr]
    --sample-path P       mask | materialize [default: mask]
    --threshold T         vote threshold [default: N/2]
    --seed N              RNG seed [default: 42]
    --workers W           worker threads for the sample pool; results are
                          identical for every W [default: 0 = auto]
    --scoring SPEC        run the hybrid scorer after every scan (spec as
                          in `detect --scoring`); the summary line reports
                          the final epoch's hybrid-flagged count. Scoring
                          joins the incremental cache key, so --follow
                          reuse is unaffected while the spec stays fixed
";

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let preset = args.get("preset").unwrap_or_else(|| "jd1".into());
    let which = match preset.as_str() {
        "jd1" => JdDataset::Jd1,
        "jd2" => JdDataset::Jd2,
        "jd3" => JdDataset::Jd3,
        other => return Err(format!("unknown preset `{other}` (jd1|jd2|jd3)")),
    };
    let scale: u32 = args.get_or("scale", 200)?;
    let epochs: usize = args.get_or("epochs", 6)?;
    if epochs == 0 {
        return Err("--epochs must be at least 1".into());
    }
    let follow = args.flag("follow");
    let policy = IncrementalPolicy {
        max_touched_fraction: args.get_or("max-touched", 0.1)?,
    };
    let sampling = match args.get("sampling").as_deref().unwrap_or("ons-user") {
        "res" => SamplingMethodConfig::RandomEdge,
        "ons-user" => SamplingMethodConfig::OneSideUser,
        "ons-merchant" => SamplingMethodConfig::OneSideMerchant,
        "tns" => SamplingMethodConfig::TwoSide,
        other => {
            return Err(format!(
                "unknown sampling `{other}` (res|ons-user|ons-merchant|tns)"
            ))
        }
    };
    let cfg = EnsemFdetConfig {
        num_samples: args.get_or("samples", 20)?,
        sample_ratio: args.get_or("ratio", 0.2)?,
        method: sampling,
        engine: args
            .get("engine")
            .map(|e| e.parse())
            .transpose()?
            .unwrap_or_default(),
        path: args
            .get("sample-path")
            .map(|p| p.parse())
            .transpose()?
            .unwrap_or_default(),
        seed: args.get_or("seed", 42)?,
        scoring: args
            .get("scoring")
            .map(|s| s.parse())
            .transpose()?
            .unwrap_or_default(),
        ..Default::default()
    };
    let threshold: u32 = args.get_or("threshold", (cfg.num_samples as u32).div_ceil(2))?;
    let workers: usize = args.get_or("workers", 0)?;
    args.finish()?;

    let tl = ramp_timeline(&jd_preset(which, scale, cfg.seed), epochs);
    let buffer = IngestBuffer::new();
    let store = SnapshotStore::new(1);
    let mut runner = ScanRunner::new();
    runner.set_workers(workers);

    let mut lines = vec![format!(
        "mode: {} | {} epochs after base | N={} S={} sampling={:?}{}",
        if follow { "follow (incremental)" } else { "full scans" },
        epochs,
        cfg.num_samples,
        cfg.sample_ratio,
        sampling,
        if cfg.scoring.enabled {
            format!(" | hybrid@{}", cfg.scoring.hybrid_threshold)
        } else {
            String::new()
        },
    )];
    lines.push(
        "epoch  txns     delta-nodes  mode         reused/repeeled  flagged  new  millis"
            .to_string(),
    );

    let to_ids = |batch: &[(u32, u32)]| {
        batch
            .iter()
            .map(|&(u, v)| (UserId(u), MerchantId(v)))
            .collect::<Vec<_>>()
    };
    let batches = std::iter::once(&tl.base).chain(tl.epochs.iter());
    let mut last_flagged: Vec<u32> = Vec::new();
    let mut last_hybrid: Option<usize> = None;
    for batch in batches {
        buffer.append_batch(to_ids(batch));
        let snapshot = store.refresh(&buffer, true);
        let out = if follow {
            runner.run_incremental(&snapshot, &store, &cfg, threshold, &policy)
        } else {
            runner.run(&snapshot, &cfg, threshold)
        };
        let mode = match out.reuse.fallback {
            Some(reason) => format!("{}*", reason.name()),
            None => out.reuse.mode().to_string(),
        };
        lines.push(format!(
            "{:<5}  {:<7}  {:<11}  {:<11}  {:>6}/{:<8}  {:<7}  {:<3}  {:.1}",
            out.epoch,
            out.transactions,
            out.reuse.delta_touched_nodes,
            mode,
            out.reuse.samples_reused,
            out.reuse.samples_repeeled,
            out.flagged.len(),
            out.new_alerts.len(),
            out.elapsed.as_secs_f64() * 1e3,
        ));
        last_flagged = out.flagged.iter().map(|u| u.0).collect();
        last_hybrid = out.scoring.as_ref().map(|s| s.hybrid_flagged.len());
    }

    let blacklisted = {
        let bl: std::collections::HashSet<u32> = tl.dataset.blacklist.iter().copied().collect();
        last_flagged.iter().filter(|u| bl.contains(u)).count()
    };
    lines.push(format!(
        "final epoch: {} flagged, {} of them blacklisted ({} accounts on the expert blacklist){}",
        last_flagged.len(),
        blacklisted,
        tl.dataset.blacklist.len(),
        match last_hybrid {
            Some(n) => format!(", {n} hybrid-flagged"),
            None => String::new(),
        },
    ));
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    /// The `reused` half of a table row's `reused/repeeled` column.
    fn reused_of(row: &str) -> usize {
        row.split_whitespace()
            .nth(4)
            .and_then(|f| f.split('/').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparseable row: {row}"))
    }

    #[test]
    fn follow_mode_reuses_after_the_cold_start() {
        // A clean sample needs its drawn node set disjoint from the
        // delta, which happens with probability ≈ (1-ratio)^touched — so
        // the test runs the regime reuse is for: a small ratio against
        // per-epoch deltas touching a small slice of the population.
        let out = run(&args(&[
            "--follow", "--scale", "400", "--epochs", "6", "--samples", "8",
            "--ratio", "0.05", "--max-touched", "1.0",
        ]))
        .unwrap();
        let rows: Vec<&str> = out.lines().collect();
        // Header + column row + 7 epochs (base + 6 ramp) + summary.
        assert_eq!(rows.len(), 10, "{out}");
        assert!(rows[2].contains("cold_cache*"), "first scan must fall back: {out}");
        for row in &rows[3..9] {
            assert!(row.contains("incremental"), "ramp epochs reuse: {out}");
        }
        let total_reused: usize = rows[3..9].iter().map(|r| reused_of(r)).sum();
        assert!(total_reused > 0, "no sample ever replayed: {out}");
        assert!(rows[9].starts_with("final epoch:"), "{out}");
    }

    #[test]
    fn full_and_follow_flag_the_same_accounts() {
        let common = ["--scale", "400", "--epochs", "2", "--samples", "8"];
        let full = run(&args(&common)).unwrap();
        let mut follow_args = vec!["--follow"];
        follow_args.extend_from_slice(&common);
        let follow = run(&args(&follow_args)).unwrap();
        // The summary line counts flagged/blacklisted accounts — identical
        // results means identical summaries.
        assert_eq!(full.lines().last(), follow.lines().last());
    }

    #[test]
    fn res_sampling_never_reuses_across_edge_growth() {
        let out = run(&args(&[
            "--follow", "--scale", "400", "--epochs", "2", "--samples", "4",
            "--sampling", "res", "--max-touched", "1.0",
        ]))
        .unwrap();
        // Every ramp epoch changes the edge count, so edge-subset draws
        // are all dirty: the scan is incremental but replays nothing.
        let rows: Vec<&str> = out
            .lines()
            .filter(|r| r.split_whitespace().nth(3) == Some("incremental"))
            .collect();
        assert!(!rows.is_empty(), "{out}");
        for row in rows {
            assert_eq!(reused_of(row), 0, "res must not reuse: {out}");
        }
    }

    #[test]
    fn scoring_keeps_follow_reuse_and_reports_hybrid_count() {
        let out = run(&args(&[
            "--follow", "--scale", "400", "--epochs", "3", "--samples", "8",
            "--ratio", "0.05", "--max-touched", "1.0", "--scoring", "hybrid",
        ]))
        .unwrap();
        let rows: Vec<&str> = out.lines().collect();
        assert!(rows[0].contains("hybrid@0.35"), "{out}");
        // A fixed scoring spec never perturbs the incremental cache: the
        // first scan is still the only fallback.
        assert!(rows[2].contains("cold_cache*"), "{out}");
        for row in &rows[3..rows.len() - 1] {
            assert!(row.contains("incremental"), "ramp epochs reuse: {out}");
        }
        assert!(out.lines().last().unwrap().contains("hybrid-flagged"), "{out}");
    }

    #[test]
    fn help_and_bad_preset() {
        assert!(run(&args(&["--help"])).unwrap().contains("OPTIONS"));
        assert!(run(&args(&["--preset", "jd9"])).is_err());
    }
}
