//! Binary entry point: thin wrapper over [`ensemfdet_cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match ensemfdet_cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
