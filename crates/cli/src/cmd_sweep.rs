//! `ensemfdet sweep` — a detector's full operating curve against labels.

use crate::args::Args;
use crate::cmd_detect::{ensemfdet_config, hybrid_pass, hybrid_summary, score_users, timing_summary};
use ensemfdet::EnsemFdet;
use ensemfdet_baselines::{Fraudar, FraudarConfig};
use ensemfdet_eval::{PrCurve, RocCurve, Table};
use ensemfdet_graph::io;

const HELP: &str = "\
ensemfdet sweep — evaluate a detector across its whole threshold range

OPTIONS:
    --graph FILE          the edge list to scan (required)
    --labels FILE         blacklist user ids (required)
    --method NAME         ensemfdet | fraudar | spoken | fbox | hits | kcore | degree
                          [default: ensemfdet]
    --json FILE           also write the curve as JSON
  ensemfdet:
    --samples N  --ratio S  --sampling M  --engine E  --sample-path P  --seed N
    --workers W           (as in `detect`)
    --timing              print the ensemble's wall-clock breakdown
    --scoring SPEC        sweep the fused hybrid score instead of the raw
                          vote counts (spec as in `detect --scoring`)
  fraudar:
    --k N                 blocks to sweep [default: 30]
  spoken / fbox:
    --components N        SVD rank [default: 25]
";

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let graph_path = args.require("graph")?;
    let labels_path = args.require("labels")?;
    let method = args.get("method").unwrap_or_else(|| "ensemfdet".into());
    let json_path = args.get("json");

    let g = io::load_edge_list(&graph_path)
        .map_err(|e| format!("cannot read {graph_path}: {e}"))?;
    let blacklist =
        io::load_labels(&labels_path).map_err(|e| format!("cannot read {labels_path}: {e}"))?;
    let mut labels = vec![false; g.num_users()];
    for &u in &blacklist {
        *labels
            .get_mut(u as usize)
            .ok_or_else(|| format!("label id {u} exceeds the graph's {} users", g.num_users()))? =
            true;
    }

    let mut timing_note: Option<String> = None;
    let mut hybrid_note: Option<String> = None;
    let (pr, roc): (PrCurve, RocCurve) = match method.as_str() {
        "ensemfdet" => {
            let cfg = ensemfdet_config(args)?;
            let workers: usize = args.get_or("workers", 0)?;
            let timing = args.flag("timing");
            args.finish()?;
            let outcome = EnsemFdet::with_workers(cfg, workers).detect(&g);
            if timing {
                timing_note = Some(timing_summary(cfg.path, &outcome));
            }
            if let Some(hybrid) = hybrid_pass(&g, &outcome, &cfg) {
                // Sweep the fused score itself — a far finer operating
                // curve than the N discrete vote thresholds.
                hybrid_note = Some(hybrid_summary(&hybrid));
                (
                    PrCurve::from_scores(&hybrid.hybrid, &labels),
                    RocCurve::from_scores(&hybrid.hybrid, &labels),
                )
            } else {
                let sets: Vec<(f64, Vec<u32>)> = (1..=outcome.votes.max_user_votes())
                    .map(|t| {
                        (
                            t as f64,
                            outcome
                                .votes
                                .detected_users(t)
                                .into_iter()
                                .map(|u| u.0)
                                .collect(),
                        )
                    })
                    .collect();
                (
                    PrCurve::from_threshold_sets(
                        sets.iter().map(|(t, d)| (*t, d.as_slice())),
                        &labels,
                    ),
                    RocCurve::from_threshold_sets(
                        sets.iter().map(|(t, d)| (*t, d.as_slice())),
                        &labels,
                    ),
                )
            }
        }
        "fraudar" => {
            let k: usize = args.get_or("k", 30)?;
            args.finish()?;
            let result = Fraudar::new(FraudarConfig {
                k,
                ..Default::default()
            })
            .run(&g);
            let points = result.operating_points();
            (
                PrCurve::from_threshold_sets(
                    points.iter().map(|(k, d)| (*k as f64, d.as_slice())),
                    &labels,
                ),
                RocCurve::from_threshold_sets(
                    points.iter().map(|(k, d)| (*k as f64, d.as_slice())),
                    &labels,
                ),
            )
        }
        m @ ("spoken" | "fbox" | "hits" | "kcore" | "degree") => {
            let scores = score_users(m, &g, args)?;
            args.finish()?;
            (
                PrCurve::from_scores(&scores, &labels),
                RocCurve::from_scores(&scores, &labels),
            )
        }
        other => return Err(format!("unknown method `{other}`\n\n{HELP}")),
    };

    if let Some(p) = &json_path {
        ensemfdet_eval::write_json(&pr, p).map_err(|e| format!("cannot write {p}: {e}"))?;
    }

    let mut t = Table::new(&["threshold", "detected", "precision", "recall", "F1"]);
    let step = (pr.points.len() / 20).max(1);
    for p in pr.points.iter().step_by(step) {
        t.row(&[
            format!("{:.3}", p.threshold),
            p.detected.to_string(),
            format!("{:.3}", p.precision),
            format!("{:.3}", p.recall),
            format!("{:.3}", p.f1),
        ]);
    }
    let mut report = t.render();
    report.push_str(&format!(
        "\nbest F1: {:.4}   AUC-PR: {:.4}   AUC-ROC: {:.4}   max TPR jump: {:.4}\n",
        pr.best_f1(),
        pr.auc_pr(),
        roc.auc(),
        roc.max_tpr_jump()
    ));
    if let Some(h) = hybrid_note {
        report.push_str(&h);
        report.push('\n');
    }
    if let Some(t) = timing_note {
        report.push_str(&t);
        report.push('\n');
    }
    if let Some(p) = json_path {
        report.push_str(&format!("curve written to {p}\n"));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn dataset_files() -> (String, String) {
        let dir = std::env::temp_dir().join("ensemfdet_cli_sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("g.edges");
        let lpath = dir.join("g.labels");
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 8..80u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 30));
        }
        io::save_edge_list(&b.build(), &gpath).unwrap();
        io::save_labels(&(0..8).collect::<Vec<u32>>(), &lpath).unwrap();
        (
            gpath.to_str().unwrap().to_string(),
            lpath.to_str().unwrap().to_string(),
        )
    }

    #[test]
    fn ensemfdet_sweep_reports_best_f1() {
        let (g, l) = dataset_files();
        let out = run(&args(&[
            "--graph", &g, "--labels", &l, "--samples", "8", "--ratio", "0.5",
        ]))
        .unwrap();
        assert!(out.contains("best F1"), "{out}");
        assert!(out.contains("AUC-ROC"));
    }

    #[test]
    fn scoring_flag_sweeps_the_hybrid_score() {
        let (g, l) = dataset_files();
        let out = run(&args(&[
            "--graph", &g, "--labels", &l, "--samples", "8", "--ratio", "0.5",
            "--scoring", "hybrid",
        ]))
        .unwrap();
        assert!(out.contains("hybrid:"), "{out}");
        // The planted 8×4 block dominates every component, so the fused
        // sweep nearly separates it.
        let f1: f64 = out
            .lines()
            .find(|l| l.starts_with("best F1:"))
            .and_then(|l| l.split_whitespace().nth(2))
            .unwrap()
            .parse()
            .unwrap();
        assert!(f1 > 0.85, "{out}");
    }

    #[test]
    fn timing_flag_reports_breakdown() {
        let (g, l) = dataset_files();
        let out = run(&args(&[
            "--graph", &g, "--labels", &l, "--samples", "8", "--ratio", "0.5", "--timing",
        ]))
        .unwrap();
        assert!(out.contains("wall-clock over 8 samples"), "{out}");
    }

    #[test]
    fn fraudar_sweep_shows_jumpiness() {
        let (g, l) = dataset_files();
        let out = run(&args(&["--graph", &g, "--labels", &l, "--method", "fraudar", "--k", "4"]))
            .unwrap();
        assert!(out.contains("max TPR jump"));
    }

    #[test]
    fn score_method_sweep_and_json() {
        let (g, l) = dataset_files();
        let dir = std::env::temp_dir().join("ensemfdet_cli_sweep");
        let json = dir.join("curve.json");
        let out = run(&args(&[
            "--graph",
            &g,
            "--labels",
            &l,
            "--method",
            "degree",
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("curve written"));
        let content = std::fs::read_to_string(&json).unwrap();
        assert!(content.contains("precision"));
    }

    #[test]
    fn label_out_of_range_rejected() {
        let (g, _) = dataset_files();
        let dir = std::env::temp_dir().join("ensemfdet_cli_sweep");
        let bad = dir.join("bad.labels");
        io::save_labels(&[10_000], &bad).unwrap();
        let err = run(&args(&[
            "--graph",
            &g,
            "--labels",
            bad.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("exceeds"));
    }
}
