//! `ensemfdet eval` — score a detection file against a label file.

use crate::args::Args;
use ensemfdet_eval::confusion;
use ensemfdet_graph::io;

const HELP: &str = "\
ensemfdet eval — precision/recall/F1 of a detection file

OPTIONS:
    --detected FILE    flagged user ids, one per line (required)
    --labels FILE      blacklist user ids, one per line (required)
    --graph FILE       edge list defining the user population
    --population N     population size (alternative to --graph)
";

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let detected_path = args.require("detected")?;
    let labels_path = args.require("labels")?;
    let graph_path = args.get("graph");
    let population_opt: Option<usize> = match args.get("population") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("option --population: cannot parse `{raw}`"))?,
        ),
        None => None,
    };
    args.finish()?;

    let detected =
        io::load_labels(&detected_path).map_err(|e| format!("cannot read {detected_path}: {e}"))?;
    let blacklist =
        io::load_labels(&labels_path).map_err(|e| format!("cannot read {labels_path}: {e}"))?;

    let population = match (population_opt, graph_path) {
        (Some(n), _) => n,
        (None, Some(gp)) => io::load_edge_list(&gp)
            .map_err(|e| format!("cannot read {gp}: {e}"))?
            .num_users(),
        (None, None) => {
            // Fall back to the max id seen anywhere.
            detected
                .iter()
                .chain(blacklist.iter())
                .map(|&u| u as usize + 1)
                .max()
                .unwrap_or(0)
        }
    };

    let mut labels = vec![false; population];
    for &u in &blacklist {
        *labels
            .get_mut(u as usize)
            .ok_or_else(|| format!("label id {u} exceeds population {population}"))? = true;
    }
    let mut detected_sorted = detected;
    detected_sorted.sort_unstable();
    detected_sorted.dedup();
    if let Some(&max) = detected_sorted.last() {
        if max as usize >= population {
            return Err(format!("detected id {max} exceeds population {population}"));
        }
    }

    let c = confusion(&detected_sorted, &labels);
    Ok(format!(
        "population: {population}\nblacklisted: {}\ndetected: {}\n\
         tp: {}  fp: {}  fn: {}  tn: {}\n\
         precision: {:.4}\nrecall:    {:.4}\nF1:        {:.4}",
        blacklist.len(),
        c.detected(),
        c.tp,
        c.fp,
        c.fn_,
        c.tn,
        c.precision(),
        c.recall(),
        c.f1()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn write_ids(name: &str, ids: &[u32]) -> String {
        let dir = std::env::temp_dir().join("ensemfdet_cli_eval");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        io::save_labels(ids, &path).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn computes_metrics() {
        let det = write_ids("det.txt", &[0, 1, 5]);
        let lab = write_ids("lab.txt", &[0, 1, 2, 3]);
        let out = run(&args(&[
            "--detected", &det, "--labels", &lab, "--population", "10",
        ]))
        .unwrap();
        assert!(out.contains("tp: 2"));
        assert!(out.contains("precision: 0.6667"), "{out}");
        assert!(out.contains("recall:    0.5000"), "{out}");
    }

    #[test]
    fn population_inferred_without_graph() {
        let det = write_ids("det2.txt", &[7]);
        let lab = write_ids("lab2.txt", &[7, 9]);
        let out = run(&args(&["--detected", &det, "--labels", &lab])).unwrap();
        assert!(out.contains("population: 10"), "{out}");
    }

    #[test]
    fn out_of_population_detected_rejected() {
        let det = write_ids("det3.txt", &[99]);
        let lab = write_ids("lab3.txt", &[1]);
        let err = run(&args(&[
            "--detected", &det, "--labels", &lab, "--population", "10",
        ]))
        .unwrap_err();
        assert!(err.contains("exceeds population"));
    }
}
