//! `ensemfdet generate` — synthesize a dataset to disk.

use crate::args::Args;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate, CamouflageTargeting, FraudGroupConfig, GeneratorConfig};

const HELP: &str = "\
ensemfdet generate — synthesize a JD-like transaction dataset

OPTIONS:
    --out STEM            output stem; writes STEM.edges and STEM.labels (required)
    --preset jd1|jd2|jd3  model one of the paper's Table I datasets
    --scale N             population divisor for the preset [default: 100]
    --seed N              RNG seed [default: 42]
  custom mode (instead of --preset):
    --users N             honest users [default: 20000]
    --merchants N         honest merchants [default: 8000]
    --groups N            fraud groups [default: 6]
    --group-users N       users per group [default: 150]
    --group-merchants N   merchants per group [default: 12]
    --density F           in-group edge probability [default: 0.6]
    --camouflage N        camouflage edges per fraud user [default: 2]
    --camouflage-uniform  target camouflage uniformly instead of by popularity
";

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let out = args.require("out")?;
    let seed: u64 = args.get_or("seed", 42)?;

    let cfg: GeneratorConfig = match args.get("preset") {
        Some(preset) => {
            let which = match preset.as_str() {
                "jd1" => JdDataset::Jd1,
                "jd2" => JdDataset::Jd2,
                "jd3" => JdDataset::Jd3,
                other => return Err(format!("unknown preset `{other}` (jd1|jd2|jd3)")),
            };
            let scale: u32 = args.get_or("scale", 100)?;
            jd_preset(which, scale, seed)
        }
        None => {
            let groups: usize = args.get_or("groups", 6)?;
            let targeting = if args.flag("camouflage-uniform") {
                CamouflageTargeting::UniformRandom
            } else {
                CamouflageTargeting::PopularityBiased
            };
            GeneratorConfig {
                num_honest_users: args.get_or("users", 20_000)?,
                num_honest_merchants: args.get_or("merchants", 8_000)?,
                fraud_groups: vec![
                    FraudGroupConfig {
                        num_users: args.get_or("group-users", 150)?,
                        num_merchants: args.get_or("group-merchants", 12)?,
                        density: args.get_or("density", 0.6)?,
                        camouflage_per_user: args.get_or("camouflage", 2)?,
                        camouflage: targeting,
                    };
                    groups
                ],
                seed,
                ..Default::default()
            }
        }
    };
    // Consume preset-mode options in custom mode and vice versa so finish()
    // only flags true typos.
    let _ = args.get("scale");
    let _ = args.get("users");
    args.finish()?;

    let ds = generate(&cfg);
    ds.save(&out).map_err(|e| format!("cannot write {out}: {e}"))?;
    let (users, fraud, merchants, edges) = ds.table1_row();
    Ok(format!(
        "wrote {out}.edges and {out}.labels\n\
         users: {users} ({fraud} blacklisted)  merchants: {merchants}  edges: {edges}\n\
         planted groups: {}  ring merchants: {}",
        ds.groups.len(),
        ds.fraud_merchants.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("ensemfdet_cli_generate");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn help_flag() {
        assert!(run(&args(&["--help"])).unwrap().contains("OPTIONS"));
    }

    #[test]
    fn preset_mode_writes_files() {
        let stem = tmp("preset");
        let out = run(&args(&["--out", &stem, "--preset", "jd1", "--scale", "400"])).unwrap();
        assert!(out.contains("blacklisted"));
        assert!(std::path::Path::new(&format!("{stem}.edges")).exists());
        assert!(std::path::Path::new(&format!("{stem}.labels")).exists());
    }

    #[test]
    fn custom_mode_respects_sizes() {
        let stem = tmp("custom");
        let out = run(&args(&[
            "--out", &stem, "--users", "500", "--merchants", "200", "--groups", "2",
            "--group-users", "20", "--group-merchants", "4", "--camouflage-uniform",
        ]))
        .unwrap();
        assert!(out.contains("planted groups: 2"), "{out}");
    }

    #[test]
    fn unknown_preset_rejected() {
        let err = run(&args(&["--out", "/tmp/x", "--preset", "jd9"])).unwrap_err();
        assert!(err.contains("jd9"));
    }

    #[test]
    fn typo_rejected() {
        let stem = tmp("typo");
        let err = run(&args(&["--out", &stem, "--persent", "jd1"])).unwrap_err();
        assert!(err.contains("--persent"));
    }

    #[test]
    fn missing_out_rejected() {
        let err = run(&args(&["--preset", "jd1"])).unwrap_err();
        assert!(err.contains("--out"));
    }
}
