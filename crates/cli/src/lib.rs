#![warn(missing_docs)]

//! The `ensemfdet` command-line tool.
//!
//! Five subcommands cover the full workflow on edge-list files:
//!
//! ```text
//! ensemfdet generate --preset jd1 --scale 100 --out data/jd1
//! ensemfdet stats    --graph data/jd1.edges
//! ensemfdet detect   --graph data/jd1.edges --method ensemfdet --threshold 20 --out flagged.txt
//! ensemfdet sweep    --graph data/jd1.edges --labels data/jd1.labels --method ensemfdet
//! ensemfdet eval     --detected flagged.txt --labels data/jd1.labels --population 4549
//! ```
//!
//! Every command is a pure function from parsed arguments to a report
//! string (plus file side-effects), so the whole surface is unit-testable
//! without spawning processes.

pub mod args;
pub mod cmd_compare;
pub mod cmd_detect;
pub mod cmd_eval;
pub mod cmd_figures;
pub mod cmd_generate;
pub mod cmd_ingest;
pub mod cmd_monitor;
pub mod cmd_stats;
pub mod cmd_sweep;
pub mod cmd_timeline;

use args::Args;

/// Top-level usage text.
pub const USAGE: &str = "\
ensemfdet — ensemble fraud detection on bipartite graphs (ICDE 2021)

USAGE:
    ensemfdet <COMMAND> [OPTIONS]

COMMANDS:
    generate   Generate a synthetic JD-like dataset (edge list + blacklist)
    timeline   Generate a multi-period campaign with drifting fraud
    monitor    Replay a ramping campaign epoch by epoch (--follow scans incrementally)
    ingest     Bulk-load a `user,merchant[,amount]` transaction log
    stats      Print statistics of an edge-list graph
    detect     Run a detector and write the flagged user ids
    sweep      Evaluate a detector's full operating curve against labels
    compare    Run every detector on a labelled dataset and tabulate
    figures    Render results/*.json into SVG figures
    eval       Score a detection file against a label file
    help       Show this message

Run `ensemfdet <COMMAND> --help` for per-command options.
";

/// Dispatches a full argument vector (excluding the program name).
/// Returns the report to print, or an error message.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(USAGE.to_string());
    };
    let args = Args::parse(rest)?;
    match command.as_str() {
        "generate" => cmd_generate::run(&args),
        "timeline" => cmd_timeline::run(&args),
        "monitor" => cmd_monitor::run(&args),
        "ingest" => cmd_ingest::run(&args),
        "stats" => cmd_stats::run(&args),
        "detect" => cmd_detect::run(&args),
        "sweep" => cmd_sweep::run(&args),
        "compare" => cmd_compare::run(&args),
        "eval" => cmd_eval::run(&args),
        "figures" => cmd_figures::run(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_command_prints_usage() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv(&["help"])).unwrap();
        assert!(out.contains("COMMANDS"));
    }

    #[test]
    fn full_workflow_through_the_cli() {
        let dir = std::env::temp_dir().join("ensemfdet_cli_workflow");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("ds");
        let stem_s = stem.to_str().unwrap();

        // generate
        let out = run(&argv(&[
            "generate", "--preset", "jd1", "--scale", "400", "--seed", "5", "--out", stem_s,
        ]))
        .unwrap();
        assert!(out.contains("edges"), "{out}");

        // stats
        let graph_file = format!("{stem_s}.edges");
        let out = run(&argv(&["stats", "--graph", &graph_file])).unwrap();
        assert!(out.contains("users"), "{out}");

        // detect
        let flagged = dir.join("flagged.txt");
        let out = run(&argv(&[
            "detect",
            "--graph",
            &graph_file,
            "--method",
            "ensemfdet",
            "--samples",
            "8",
            "--ratio",
            "0.2",
            "--threshold",
            "4",
            "--out",
            flagged.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("detected"), "{out}");

        // eval
        let labels_file = format!("{stem_s}.labels");
        let out = run(&argv(&[
            "eval",
            "--detected",
            flagged.to_str().unwrap(),
            "--labels",
            &labels_file,
            "--graph",
            &graph_file,
        ]))
        .unwrap();
        assert!(out.contains("precision"), "{out}");

        // sweep
        let out = run(&argv(&[
            "sweep",
            "--graph",
            &graph_file,
            "--labels",
            &labels_file,
            "--method",
            "fraudar",
            "--k",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("F1"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
