//! `ensemfdet stats` — graph statistics.

use crate::args::Args;
use ensemfdet_eval::Table;
use ensemfdet_graph::{io, GraphStats};

const HELP: &str = "\
ensemfdet stats — print statistics of an edge-list graph

OPTIONS:
    --graph FILE     the edge list to inspect (required)
";

/// Runs the command.
pub fn run(args: &Args) -> Result<String, String> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    let path = args.require("graph")?;
    args.finish()?;

    let g = io::load_edge_list(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let s = GraphStats::of(&g);

    let mut t = Table::new(&["statistic", "value"]);
    t.row(&["users".into(), s.num_users.to_string()]);
    t.row(&["merchants".into(), s.num_merchants.to_string()]);
    t.row(&["edges".into(), s.num_edges.to_string()]);
    t.row(&["avg user degree".into(), format!("{:.3}", s.avg_user_degree)]);
    t.row(&[
        "avg merchant degree".into(),
        format!("{:.3}", s.avg_merchant_degree),
    ]);
    t.row(&["max user degree".into(), s.max_user_degree.to_string()]);
    t.row(&[
        "max merchant degree".into(),
        s.max_merchant_degree.to_string(),
    ]);
    t.row(&["isolated users".into(), s.isolated_users.to_string()]);
    t.row(&[
        "isolated merchants".into(),
        s.isolated_merchants.to_string(),
    ]);
    t.row(&["density".into(), format!("{:.3e}", s.density)]);
    Ok(t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::BipartiteGraph;

    fn args(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn stats_of_small_graph() {
        let dir = std::env::temp_dir().join("ensemfdet_cli_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let g = BipartiteGraph::from_edges(3, 2, vec![(0, 0), (1, 1), (2, 0)]).unwrap();
        io::save_edge_list(&g, &path).unwrap();
        let out = run(&args(&["--graph", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("users"));
        assert!(out.contains('3'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&args(&["--graph", "/nonexistent/g.edges"])).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn help_flag() {
        assert!(run(&args(&["--help"])).unwrap().contains("OPTIONS"));
    }
}
