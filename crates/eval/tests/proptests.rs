//! Property-based tests for the evaluation crate.

use ensemfdet_eval::{confusion, PrCurve};
use proptest::prelude::*;

proptest! {
    #[test]
    fn confusion_partitions_population(
        labels in prop::collection::vec(any::<bool>(), 1..200),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 0..50)
    ) {
        let mut detected: Vec<u32> = picks.iter().map(|i| i.index(labels.len()) as u32).collect();
        detected.sort_unstable();
        detected.dedup();
        let c = confusion(&detected, &labels);
        prop_assert_eq!(c.tp + c.fp + c.fn_ + c.tn, labels.len());
        prop_assert_eq!(c.tp + c.fp, detected.len());
        prop_assert_eq!(c.tp + c.fn_, labels.iter().filter(|&&l| l).count());
        prop_assert!(c.precision() >= 0.0 && c.precision() <= 1.0);
        prop_assert!(c.recall() >= 0.0 && c.recall() <= 1.0);
        prop_assert!(c.f1() >= 0.0 && c.f1() <= 1.0);
        // F1 lies between min and max of P and R when both are positive.
        if c.precision() > 0.0 && c.recall() > 0.0 {
            let lo = c.precision().min(c.recall());
            let hi = c.precision().max(c.recall());
            prop_assert!(c.f1() >= lo - 1e-12 && c.f1() <= hi + 1e-12);
        }
    }

    #[test]
    fn pr_curve_recall_is_monotone(
        scored in prop::collection::vec((0.01f64..1.0, any::<bool>()), 1..150)
    ) {
        let scores: Vec<f64> = scored.iter().map(|&(s, _)| s).collect();
        let labels: Vec<bool> = scored.iter().map(|&(_, l)| l).collect();
        let c = PrCurve::from_scores(&scores, &labels);
        for w in c.points.windows(2) {
            prop_assert!(w[0].recall <= w[1].recall + 1e-12);
            prop_assert!(w[0].detected <= w[1].detected);
        }
        // The loosest point detects every positively-scored item.
        if let Some(last) = c.points.last() {
            prop_assert_eq!(last.detected, scores.len());
        }
        // AUC within [0, 1].
        let auc = c.auc_pr();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&auc));
        prop_assert!(c.best_f1() <= 1.0);
    }

    #[test]
    fn perfect_scores_have_unit_auc(
        n_pos in 1usize..30, n_neg in 1usize..30
    ) {
        // All positives scored above all negatives.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_pos {
            scores.push(1.0 + i as f64 * 0.001);
            labels.push(true);
        }
        for i in 0..n_neg {
            scores.push(0.1 + i as f64 * 0.0001);
            labels.push(false);
        }
        let c = PrCurve::from_scores(&scores, &labels);
        prop_assert!((c.auc_pr() - 1.0).abs() < 1e-9);
        prop_assert!((c.best_f1() - 1.0).abs() < 1e-9);
    }
}
