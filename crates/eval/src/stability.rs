//! Run-to-run stability statistics.
//!
//! The paper repeatedly claims EnsemFDet is *stable* — across `N`, across
//! `S`, across datasets — but reports single runs. This module provides the
//! machinery to quantify that: collect a metric over repeated seeded runs
//! and summarize its spread.

use serde::{Deserialize, Serialize};

/// Summary statistics of repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Number of measurements.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Smallest measurement.
    pub min: f64,
    /// Largest measurement.
    pub max: f64,
}

impl Spread {
    /// Computes the spread of a measurement series.
    ///
    /// # Panics
    ///
    /// Panics on an empty series or non-finite values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "no measurements");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "non-finite measurement"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        Spread {
            n,
            mean,
            std_dev: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Coefficient of variation `std_dev / |mean|`; infinite for zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            if self.std_dev == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.std_dev / self.mean.abs()
        }
    }

    /// `mean ± std` rendering for tables.
    pub fn display(&self, decimals: usize) -> String {
        format!(
            "{:.d$} ± {:.d$}",
            self.mean,
            self.std_dev,
            d = decimals
        )
    }
}

/// Runs `measure(seed)` for each seed and summarizes the results.
pub fn across_seeds(seeds: impl IntoIterator<Item = u64>, mut measure: impl FnMut(u64) -> f64) -> Spread {
    let values: Vec<f64> = seeds.into_iter().map(&mut measure).collect();
    Spread::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_of_constant_series() {
        let s = Spread::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn spread_of_known_series() {
        let s = Spread::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_measurement() {
        let s = Spread::of(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    #[should_panic(expected = "no measurements")]
    fn empty_series_panics() {
        Spread::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        Spread::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn across_seeds_passes_each_seed() {
        let s = across_seeds(0..5, |seed| seed as f64);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn display_formats() {
        let s = Spread::of(&[1.0, 2.0]);
        assert_eq!(s.display(2), "1.50 ± 0.71");
    }

    #[test]
    fn cv_of_zero_mean() {
        assert_eq!(Spread::of(&[0.0, 0.0]).cv(), 0.0);
        assert!(Spread::of(&[-1.0, 1.0]).cv().is_infinite());
    }
}
