//! Confusion counts and the derived Precision / Recall / F1.
//!
//! Accuracy is intentionally not offered: with fraud prevalence of 0.7–5%
//! (Table I) it is dominated by true negatives and carries no signal — the
//! paper makes the same point in Section V-B1.

use serde::{Deserialize, Serialize};

/// Binary-classification confusion counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Detected and blacklisted.
    pub tp: usize,
    /// Detected but not blacklisted.
    pub fp: usize,
    /// Blacklisted but not detected.
    pub fn_: usize,
    /// Neither.
    pub tn: usize,
}

impl Confusion {
    /// Precision `tp / (tp + fp)`; 0 when nothing was detected.
    pub fn precision(&self) -> f64 {
        let det = self.tp + self.fp;
        if det == 0 {
            0.0
        } else {
            self.tp as f64 / det as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when the ground truth is empty.
    pub fn recall(&self) -> f64 {
        let pos = self.tp + self.fn_;
        if pos == 0 {
            0.0
        } else {
            self.tp as f64 / pos as f64
        }
    }

    /// F1, the harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Number of detected items.
    pub fn detected(&self) -> usize {
        self.tp + self.fp
    }
}

/// Builds confusion counts from a detected index set and a label vector
/// (`labels[i] == true` ⇔ item `i` is blacklisted).
///
/// Detected indexes must be in range and duplicate-free (sorted not
/// required).
///
/// # Panics
///
/// Panics if a detected index is out of range (duplicates double-count and
/// are a caller bug; they are debug-asserted).
pub fn confusion(detected: &[u32], labels: &[bool]) -> Confusion {
    #[cfg(debug_assertions)]
    {
        let set: std::collections::HashSet<u32> = detected.iter().copied().collect();
        debug_assert_eq!(set.len(), detected.len(), "duplicate detected indexes");
    }
    let mut c = Confusion::default();
    let mut hit = vec![false; labels.len()];
    for &d in detected {
        let d = d as usize;
        assert!(d < labels.len(), "detected index {d} out of range");
        hit[d] = true;
        if labels[d] {
            c.tp += 1;
        } else {
            c.fp += 1;
        }
    }
    for (i, &l) in labels.iter().enumerate() {
        if !hit[i] {
            if l {
                c.fn_ += 1;
            } else {
                c.tn += 1;
            }
        }
    }
    c
}

/// Group-level recall: the fraction of fraud *groups* considered caught,
/// where a group counts as caught when at least `member_fraction` of its
/// members appear in `detected`. Risk-control teams act on groups (block
/// the ring, claw back the discounts), so catching 60% of a ring is
/// operationally equivalent to catching all of it — a per-account recall
/// of 0.6 can mean 100% of groups neutralized.
///
/// # Panics
///
/// Panics if `member_fraction ∉ (0, 1]` or any group is empty.
pub fn group_recall(groups: &[Vec<u32>], detected: &[u32], member_fraction: f64) -> f64 {
    assert!(
        member_fraction > 0.0 && member_fraction <= 1.0,
        "member_fraction must be in (0, 1]"
    );
    if groups.is_empty() {
        return 0.0;
    }
    let detected: std::collections::HashSet<u32> = detected.iter().copied().collect();
    let caught = groups
        .iter()
        .filter(|g| {
            assert!(!g.is_empty(), "empty fraud group");
            let hits = g.iter().filter(|u| detected.contains(u)).count();
            hits as f64 >= member_fraction * g.len() as f64
        })
        .count();
    caught as f64 / groups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_detection() {
        let labels = vec![true, false, true, false];
        let c = confusion(&[0, 2], &labels);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 0,
                fn_: 0,
                tn: 2
            }
        );
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn partial_detection() {
        let labels = vec![true, true, false, false, true];
        let c = confusion(&[0, 2], &labels);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 1);
        assert_eq!(c.fn_, 2);
        assert_eq!(c.tn, 1);
        assert_eq!(c.precision(), 0.5);
        assert!((c.recall() - 1.0 / 3.0).abs() < 1e-12);
        let f1 = 2.0 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0 / 3.0);
        assert!((c.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn empty_detection_has_zero_precision_without_nan() {
        let labels = vec![true, false];
        let c = confusion(&[], &labels);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.detected(), 0);
    }

    #[test]
    fn no_positives_in_ground_truth() {
        let labels = vec![false, false];
        let c = confusion(&[0], &labels);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.fp, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_detected_panics() {
        confusion(&[5], &[true, false]);
    }

    #[test]
    fn group_recall_counts_majority_caught_groups() {
        let groups = vec![vec![0, 1, 2, 3], vec![10, 11], vec![20, 21, 22]];
        // Group 1 fully caught, group 2 half caught, group 3 untouched.
        let detected = vec![0, 1, 2, 3, 10];
        assert_eq!(group_recall(&groups, &detected, 0.5), 2.0 / 3.0);
        assert_eq!(group_recall(&groups, &detected, 1.0), 1.0 / 3.0);
        assert_eq!(group_recall(&groups, &detected, 0.4), 2.0 / 3.0);
        assert_eq!(group_recall(&groups, &[], 0.5), 0.0);
        assert_eq!(group_recall(&[], &detected, 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "member_fraction")]
    fn group_recall_rejects_zero_fraction() {
        group_recall(&[vec![1]], &[1], 0.0);
    }

    #[test]
    fn counts_partition_population() {
        let labels = vec![true, false, true, false, false, true, false];
        let c = confusion(&[1, 2, 6], &labels);
        assert_eq!(c.tp + c.fp + c.fn_ + c.tn, labels.len());
    }
}
