//! Wall-clock measurement helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Runs `f`, returning its result and the elapsed wall-clock time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration as the paper's tables do (seconds, 3 decimals).
pub fn seconds(d: Duration) -> String {
    format!("{:.3} sec", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value_and_positive_duration() {
        let (v, d) = time_it(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(v, (0..10_000u64).map(|i| i * i).fold(0u64, u64::wrapping_add));
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn seconds_formats_three_decimals() {
        assert_eq!(seconds(Duration::from_millis(1234)), "1.234 sec");
        assert_eq!(seconds(Duration::ZERO), "0.000 sec");
    }
}
