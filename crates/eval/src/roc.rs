//! ROC curves and AUC-ROC.
//!
//! The paper's introduction criticizes heuristic block detectors for their
//! "zigzag ROC curve": whole-block detections make the true-positive rate
//! jump in coarse steps, so no operating point can be dialed to a target
//! false-positive rate. This module quantifies that — including a
//! smoothness diagnostic ([`RocCurve::max_tpr_jump`]).

use crate::metrics::{confusion, Confusion};
use serde::{Deserialize, Serialize};

/// One ROC operating point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// The threshold that produced this point.
    pub threshold: f64,
    /// False-positive rate `fp / (fp + tn)`.
    pub fpr: f64,
    /// True-positive rate (recall) `tp / (tp + fn)`.
    pub tpr: f64,
}

impl RocPoint {
    /// Builds a point from confusion counts.
    pub fn from_confusion(threshold: f64, c: &Confusion) -> Self {
        let neg = c.fp + c.tn;
        RocPoint {
            threshold,
            fpr: if neg == 0 { 0.0 } else { c.fp as f64 / neg as f64 },
            tpr: c.recall(),
        }
    }
}

/// An ROC curve, ordered from the strictest threshold to the loosest.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// The operating points.
    pub points: Vec<RocPoint>,
}

impl RocCurve {
    /// Sweeps every distinct positive score value as a `score ≥ t`
    /// threshold, exactly mirroring [`crate::PrCurve::from_scores`].
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn from_scores(scores: &[f64], labels: &[bool]) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        let total_pos = labels.iter().filter(|&&l| l).count();
        let total_neg = labels.len() - total_pos;
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("scores must not be NaN")
                .then(a.cmp(&b))
        });
        let mut points = Vec::new();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0usize;
        while i < order.len() {
            let t = scores[order[i]];
            if t <= 0.0 {
                break;
            }
            while i < order.len() && scores[order[i]] == t {
                if labels[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold: t,
                fpr: if total_neg == 0 {
                    0.0
                } else {
                    fp as f64 / total_neg as f64
                },
                tpr: if total_pos == 0 {
                    0.0
                } else {
                    tp as f64 / total_pos as f64
                },
            });
        }
        RocCurve { points }
    }

    /// Evaluates an explicit `(threshold, detected set)` family.
    pub fn from_threshold_sets<'a>(
        sets: impl IntoIterator<Item = (f64, &'a [u32])>,
        labels: &[bool],
    ) -> Self {
        let points = sets
            .into_iter()
            .map(|(t, detected)| RocPoint::from_confusion(t, &confusion(detected, labels)))
            .collect();
        RocCurve { points }
    }

    /// Area under the ROC curve by trapezoidal integration over FPR,
    /// anchored at (0,0) and (1,1).
    pub fn auc(&self) -> f64 {
        let mut pts: Vec<(f64, f64)> = self.points.iter().map(|p| (p.fpr, p.tpr)).collect();
        pts.push((0.0, 0.0));
        pts.push((1.0, 1.0));
        pts.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let mut auc = 0.0;
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            auc += (x1 - x0) * (y0 + y1) / 2.0;
        }
        auc
    }

    /// The largest single-step jump in TPR between consecutive operating
    /// points — the "zigzag" diagnostic. Smooth detectors score near
    /// `1 / #positives`; whole-block detectors score a block's share of the
    /// positives in one step.
    pub fn max_tpr_jump(&self) -> f64 {
        let mut tprs: Vec<f64> = self.points.iter().map(|p| p.tpr).collect();
        tprs.push(0.0);
        tprs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        tprs.windows(2).map(|w| w[1] - w[0]).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scores_have_unit_auc() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![true, true, false, false];
        let roc = RocCurve::from_scores(&scores, &labels);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_scores_have_zero_ish_auc() {
        let scores = vec![0.9, 0.8, 0.2, 0.1];
        let labels = vec![false, false, true, true];
        let roc = RocCurve::from_scores(&scores, &labels);
        assert!(roc.auc() < 0.3);
    }

    #[test]
    fn random_scores_auc_near_half() {
        // Alternating labels down the score ranking → AUC ≈ 0.5.
        let n = 200;
        let scores: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 / n as f64).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let roc = RocCurve::from_scores(&scores, &labels);
        assert!((roc.auc() - 0.5).abs() < 0.02, "auc {}", roc.auc());
    }

    #[test]
    fn rates_are_monotone_along_the_sweep() {
        let scores = vec![0.9, 0.7, 0.7, 0.5, 0.3, 0.2];
        let labels = vec![true, false, true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &labels);
        for w in roc.points.windows(2) {
            assert!(w[0].fpr <= w[1].fpr);
            assert!(w[0].tpr <= w[1].tpr);
        }
    }

    #[test]
    fn threshold_sets_and_point_from_confusion() {
        let labels = vec![true, true, false, false];
        let all: Vec<u32> = vec![0, 1, 2, 3];
        let one: Vec<u32> = vec![0];
        let roc = RocCurve::from_threshold_sets([(2.0, &one[..]), (1.0, &all[..])], &labels);
        assert_eq!(roc.points[0].tpr, 0.5);
        assert_eq!(roc.points[0].fpr, 0.0);
        assert_eq!(roc.points[1].tpr, 1.0);
        assert_eq!(roc.points[1].fpr, 1.0);
    }

    #[test]
    fn zigzag_diagnostic_flags_block_detectors() {
        let labels: Vec<bool> = (0..100).map(|i| i < 50).collect();
        // Smooth detector: one positive at a time.
        let smooth: Vec<f64> = (0..100).map(|i| 1.0 - i as f64 / 100.0).collect();
        let smooth_roc = RocCurve::from_scores(&smooth, &labels);
        assert!(smooth_roc.max_tpr_jump() <= 0.021);
        // Block detector: one threshold set grabbing 40 positives at once.
        let block: Vec<u32> = (0..40).collect();
        let block_roc = RocCurve::from_threshold_sets([(1.0, &block[..])], &labels);
        assert!(block_roc.max_tpr_jump() >= 0.79);
    }

    #[test]
    fn empty_curve_auc_is_half_from_anchors() {
        // Only the (0,0)-(1,1) anchor diagonal remains.
        assert!((RocCurve::default().auc() - 0.5).abs() < 1e-12);
        assert_eq!(RocCurve::default().max_tpr_jump(), 0.0);
    }

    #[test]
    fn no_negatives_population() {
        let scores = vec![0.9, 0.5];
        let labels = vec![true, true];
        let roc = RocCurve::from_scores(&scores, &labels);
        assert!(roc.points.iter().all(|p| p.fpr == 0.0));
    }
}
