//! Precision–recall curves.
//!
//! Two constructors cover every experiment in the paper:
//!
//! - [`PrCurve::from_scores`] — sweep all distinct score thresholds of a
//!   per-item fraud score (SVD baselines, vote fractions);
//! - [`PrCurve::from_threshold_sets`] — evaluate an explicit family of
//!   detected sets (EnsemFDet's `T` sweep, Fraudar's `k` sweep), keeping the
//!   native threshold value on each point.

use crate::metrics::{confusion, Confusion};
use serde::{Deserialize, Serialize};

/// One operating point of a detector.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// The threshold that produced this point (score cut, vote count `T`,
    /// block count `k` — constructor-dependent).
    pub threshold: f64,
    /// Number of detected items.
    pub detected: usize,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

impl PrPoint {
    /// Builds a point from confusion counts.
    pub fn from_confusion(threshold: f64, c: &Confusion) -> Self {
        PrPoint {
            threshold,
            detected: c.detected(),
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
        }
    }
}

/// A precision–recall curve (points ordered by increasing recall /
/// decreasing threshold).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PrCurve {
    /// The operating points.
    pub points: Vec<PrPoint>,
}

impl PrCurve {
    /// Sweeps every distinct score value as a `score ≥ t` detection
    /// threshold. `scores[i]` is item `i`'s fraud score; `labels[i]` its
    /// ground truth. Points are ordered from the strictest threshold (lowest
    /// recall) to the loosest.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn from_scores(scores: &[f64], labels: &[bool]) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        let total_pos = labels.iter().filter(|&&l| l).count();
        // Sort items by score descending; walk down accumulating tp/fp.
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("scores must not be NaN")
                .then(a.cmp(&b))
        });
        let mut points = Vec::new();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0usize;
        while i < order.len() {
            let t = scores[order[i]];
            if t <= 0.0 {
                // Score 0 (or below) means "no evidence"; sweeping past it
                // would declare the whole population detected.
                break;
            }
            // Consume the whole tie group.
            while i < order.len() && scores[order[i]] == t {
                if labels[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            let c = Confusion {
                tp,
                fp,
                fn_: total_pos - tp,
                tn: labels.len() - total_pos - fp,
            };
            points.push(PrPoint::from_confusion(t, &c));
        }
        PrCurve { points }
    }

    /// Evaluates an explicit `(threshold, detected set)` family.
    pub fn from_threshold_sets<'a>(
        sets: impl IntoIterator<Item = (f64, &'a [u32])>,
        labels: &[bool],
    ) -> Self {
        let points = sets
            .into_iter()
            .map(|(t, detected)| PrPoint::from_confusion(t, &confusion(detected, labels)))
            .collect();
        PrCurve { points }
    }

    /// Best F1 over the curve (0 for an empty curve).
    pub fn best_f1(&self) -> f64 {
        self.points.iter().map(|p| p.f1).fold(0.0, f64::max)
    }

    /// The point with the best F1.
    pub fn best_point(&self) -> Option<&PrPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.f1.partial_cmp(&b.f1).expect("f1 is finite"))
    }

    /// Area under the precision–recall curve by step interpolation over
    /// recall (conservative: uses each segment's right-end precision, with
    /// the first point's precision carried back to recall 0).
    pub fn auc_pr(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.recall, p.precision))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("recall is finite"));
        let mut auc = 0.0;
        let mut prev_r = 0.0;
        for &(r, p) in &pts {
            auc += (r - prev_r).max(0.0) * p;
            prev_r = r;
        }
        auc
    }

    /// Linear interpolation of precision at a given recall (for comparing
    /// curves at matched recall, as the Figure 3 discussion does).
    pub fn precision_at_recall(&self, recall: f64) -> Option<f64> {
        let mut pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .map(|p| (p.recall, p.precision))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("recall is finite"));
        if pts.is_empty() || recall > pts.last().expect("nonempty").0 {
            return None;
        }
        let mut prev = pts[0];
        if recall <= prev.0 {
            return Some(prev.1);
        }
        for &(r, p) in &pts[1..] {
            if recall <= r {
                let t = (recall - prev.0) / (r - prev.0).max(f64::MIN_POSITIVE);
                return Some(prev.1 + t * (p - prev.1));
            }
            prev = (r, p);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_sweep_orders_strict_to_loose() {
        // Items: scores 0.9 (fraud), 0.8 (honest), 0.7 (fraud), 0.1 (honest).
        let scores = vec![0.9, 0.8, 0.7, 0.1];
        let labels = vec![true, false, true, false];
        let c = PrCurve::from_scores(&scores, &labels);
        assert_eq!(c.points.len(), 4);
        assert_eq!(c.points[0].detected, 1);
        assert_eq!(c.points[0].precision, 1.0);
        assert_eq!(c.points[0].recall, 0.5);
        assert_eq!(c.points[3].detected, 4);
        assert_eq!(c.points[3].recall, 1.0);
        assert_eq!(c.points[3].precision, 0.5);
        // Recall is monotone nondecreasing along the sweep.
        for w in c.points.windows(2) {
            assert!(w[0].recall <= w[1].recall);
        }
    }

    #[test]
    fn tied_scores_collapse_to_one_point() {
        let scores = vec![0.5, 0.5, 0.5];
        let labels = vec![true, false, true];
        let c = PrCurve::from_scores(&scores, &labels);
        assert_eq!(c.points.len(), 1);
        assert_eq!(c.points[0].detected, 3);
    }

    #[test]
    fn zero_scores_are_not_swept() {
        let scores = vec![0.9, 0.0, 0.0];
        let labels = vec![true, true, false];
        let c = PrCurve::from_scores(&scores, &labels);
        assert_eq!(c.points.len(), 1);
        assert_eq!(c.points[0].detected, 1);
        assert_eq!(c.points[0].recall, 0.5);
    }

    #[test]
    fn threshold_sets_keep_native_thresholds() {
        let labels = vec![true, true, false, false];
        let t3: Vec<u32> = vec![0];
        let t1: Vec<u32> = vec![0, 1, 2];
        let c = PrCurve::from_threshold_sets([(3.0, &t3[..]), (1.0, &t1[..])], &labels);
        assert_eq!(c.points[0].threshold, 3.0);
        assert_eq!(c.points[0].precision, 1.0);
        assert!((c.points[1].precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.points[1].recall, 1.0);
    }

    #[test]
    fn best_f1_and_best_point() {
        let labels = vec![true, true, false, false];
        let scores = vec![0.9, 0.6, 0.7, 0.1];
        let c = PrCurve::from_scores(&scores, &labels);
        let best = c.best_point().unwrap();
        assert!((c.best_f1() - best.f1).abs() < 1e-15);
        assert!(best.f1 > 0.5);
    }

    #[test]
    fn auc_of_perfect_detector_is_one() {
        let scores = vec![1.0, 0.9, 0.1, 0.05];
        let labels = vec![true, true, false, false];
        let c = PrCurve::from_scores(&scores, &labels);
        assert!((c.auc_pr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_of_empty_curve_is_zero() {
        assert_eq!(PrCurve::default().auc_pr(), 0.0);
        assert_eq!(PrCurve::default().best_f1(), 0.0);
        assert!(PrCurve::default().best_point().is_none());
    }

    #[test]
    fn precision_at_recall_interpolates() {
        let labels = vec![true, true, false, false];
        let scores = vec![0.9, 0.6, 0.7, 0.1];
        let c = PrCurve::from_scores(&scores, &labels);
        // At recall 0.5: precision 1.0 (first point).
        assert!((c.precision_at_recall(0.5).unwrap() - 1.0).abs() < 1e-12);
        // Beyond max recall: None.
        assert!(c.precision_at_recall(1.1).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        PrCurve::from_scores(&[0.5], &[true, false]);
    }
}
