//! Experiment output rendering: aligned text tables for the console and
//! JSON files for regeneration/diffing.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        row.truncate(self.header.len());
        self.rows.push(row);
        self
    }

    /// Convenience for string-literal rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(&sep, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Serializes `value` as pretty JSON into `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates I/O and serialization failures.
pub fn write_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Formats a float with the given precision — table-cell helper.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["alpha", "1"]);
        t.row_strs(&["b", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("-----"));
        // Columns align: "value" column starts at the same offset everywhere.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].ord_char_at(col), Some('1'));
        assert_eq!(lines[3].ord_char_at(col), Some('2'));
    }

    trait CharAt {
        fn ord_char_at(&self, i: usize) -> Option<char>;
    }
    impl CharAt for &str {
        fn ord_char_at(&self, i: usize) -> Option<char> {
            self.chars().nth(i)
        }
    }

    #[test]
    fn short_rows_are_padded_long_rows_truncated() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strs(&["only"]);
        t.row_strs(&["x", "y", "z"]);
        let s = t.render();
        assert_eq!(t.len(), 2);
        assert!(!s.contains('z'));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(&["a"]);
        assert!(t.is_empty());
        let s = t.render();
        assert_eq!(s.lines().count(), 2); // header + separator
    }

    #[test]
    fn write_json_round_trips() {
        #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
        struct Row {
            x: u32,
            name: String,
        }
        let dir = std::env::temp_dir().join("ensemfdet_eval_report_test");
        let path = dir.join("nested").join("row.json");
        let row = Row {
            x: 7,
            name: "hi".into(),
        };
        write_json(&row, &path).unwrap();
        let back: Row = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, row);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_f_precision() {
        assert_eq!(fmt_f(1.23456, 3), "1.235");
        assert_eq!(fmt_f(2.0, 1), "2.0");
    }
}
