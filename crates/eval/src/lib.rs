#![warn(missing_docs)]

//! Evaluation harness: classification metrics, precision–recall curves,
//! timing, and experiment output rendering.
//!
//! The paper evaluates detectors by Precision / Recall / F1 against an
//! expert blacklist, plotted either against each other (Figures 3, 5–8) or
//! against the number of detected PINs (Figure 4) or the vote threshold `T`
//! (Figure 9). This crate is deliberately free of graph dependencies — it
//! consumes plain label vectors, index sets, and score vectors — so every
//! detector (and every reader's detector) can plug in.

pub mod curve;
pub mod metrics;
pub mod report;
pub mod roc;
pub mod stability;
pub mod timing;

pub use curve::{PrCurve, PrPoint};
pub use metrics::{confusion, group_recall, Confusion};
pub use report::{write_json, Table};
pub use roc::{RocCurve, RocPoint};
pub use stability::Spread;
pub use timing::time_it;
