//! Hand-rolled HTTP/1.1 request parsing and response serialization —
//! just enough for a JSON API driven by `curl` and tests, hardened
//! against hostile clients: every read is bounded (header bytes, header
//! count, body bytes) and failures carry the status code the client
//! should see.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};

/// Maximum accepted body size (1 MiB of JSON records per request).
pub const MAX_BODY: usize = 1 << 20;

/// Maximum bytes across the request line and all headers. A client that
/// streams headers forever is cut off here instead of growing memory.
pub const MAX_HEADER_BYTES: usize = 8 << 10;

/// Maximum number of header lines.
pub const MAX_HEADER_COUNT: usize = 64;

/// A request-reading failure, carrying the HTTP status and machine error
/// code the client should receive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// Status to respond with (400, 408, 413, 431, …).
    pub status: u16,
    /// Stable machine-readable error code (`"bad_request"`,
    /// `"timeout"`, `"body_too_large"`, `"header_too_large"`, …).
    pub code: &'static str,
    /// Human-readable cause, returned in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// An error with an explicit status and code.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        HttpError {
            status,
            code,
            message: message.into(),
        }
    }

    /// A plain 400 with code `"bad_request"`.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, "bad_request", message)
    }

    /// Classifies an I/O failure: socket read deadlines surface as
    /// `WouldBlock`/`TimedOut` and map to 408, everything else to 400.
    fn from_io(err: &std::io::Error, context: &str) -> Self {
        match err.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                Self::new(408, "timeout", format!("timed out reading {context}"))
            }
            ErrorKind::UnexpectedEof => {
                Self::bad_request(format!("connection closed mid-{context}"))
            }
            _ => Self::bad_request(format!("i/o error reading {context}: {err}")),
        }
    }

    /// The response this error should produce.
    pub fn to_response(&self) -> Response {
        Response::error(self.status, self.code, &self.message)
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component, e.g. `/health` (query strings are not split off).
    pub path: String,
    /// Lowercased media type from the `Content-Type` header, parameters
    /// stripped (`application/x-ndjson`, `application/json`, …); empty
    /// when the header is absent. Routes that negotiate on content type
    /// (bulk ingest) read this; everything else ignores it.
    pub content_type: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// A response to serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `content-type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &serde_json::Value) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: value.to_string().into_bytes(),
        }
    }

    /// A plain-text response with an explicit content type (the `/metrics`
    /// route uses the Prometheus exposition content type).
    pub fn text(status: u16, content_type: &'static str, body: String) -> Self {
        Response {
            status,
            content_type,
            body: body.into_bytes(),
        }
    }

    /// The standard JSON error envelope every route uses:
    /// `{ "error": { "code": <machine code>, "message": <human text> } }`.
    pub fn error(status: u16, code: &str, message: impl Into<String>) -> Self {
        Self::json(
            status,
            &serde_json::json!({ "error": { "code": code, "message": message.into() } }),
        )
    }
}

/// Reads one `\n`-terminated line, charging its bytes against `budget`.
/// Exceeding the budget is a 431; EOF mid-line is a 400.
fn read_bounded_line<R: Read>(
    reader: &mut BufReader<R>,
    budget: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    // One byte past the budget distinguishes "line fits exactly" from
    // "line keeps going".
    let n = (&mut *reader)
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut buf)
        .map_err(|e| HttpError::from_io(&e, "headers"))?;
    if n == 0 {
        return Ok(None);
    }
    // A line of exactly `budget + 1` bytes can still be `\n`-terminated, so
    // the over-budget check must come before the subtraction either way.
    if n > *budget {
        return Err(HttpError::new(
            431,
            "header_too_large",
            format!("header section exceeds {MAX_HEADER_BYTES} bytes"),
        ));
    }
    if buf.last() != Some(&b'\n') {
        return Err(HttpError::bad_request("connection closed mid-headers"));
    }
    *budget -= n;
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf).map(Some).map_err(|_| {
        HttpError::bad_request("header line is not valid UTF-8")
    })
}

/// Reads one request from a stream.
///
/// # Errors
///
/// Returns an [`HttpError`] carrying the right status: 400 for malformed
/// requests, 408 for read deadlines hit mid-request, 413 for oversized
/// bodies, 431 for an oversized or endless header section.
pub fn read_request<R: Read>(stream: R) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut header_budget = MAX_HEADER_BYTES;

    let request_line = read_bounded_line(&mut reader, &mut header_budget)?
        .ok_or_else(|| HttpError::bad_request("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::bad_request("missing request path"))?
        .to_string();

    // Headers: we only care about Content-Length and Content-Type.
    let mut content_length = 0usize;
    let mut content_type = String::new();
    let mut header_count = 0usize;
    loop {
        let line = read_bounded_line(&mut reader, &mut header_budget)?
            .ok_or_else(|| HttpError::bad_request("connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADER_COUNT {
            return Err(HttpError::new(
                431,
                "header_too_large",
                format!("more than {MAX_HEADER_COUNT} headers"),
            ));
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::bad_request(format!("bad content-length `{}`", value.trim()))
                })?;
            } else if name.eq_ignore_ascii_case("content-type") {
                // Media type only — `application/json; charset=utf-8`
                // negotiates the same as `application/json`.
                let media = value.split(';').next().unwrap_or("").trim();
                content_type = media.to_ascii_lowercase();
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::new(
            413,
            "body_too_large",
            format!("body of {content_length} bytes exceeds limit"),
        ));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| HttpError::from_io(&e, "body"))?;
    Ok(Request {
        method,
        path,
        content_type,
        body,
    })
}

/// Writes a response to a stream.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_response<W: Write>(mut stream: W, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        // A neutral phrase for anything unmapped; previously every
        // unmapped status — including 429 and 503 — was labelled
        // "Internal Server Error".
        _ => "Unknown",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    )?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /health HTTP/1.1\r\nhost: x\r\n\r\n";
        let r = read_request(&raw[..]).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/health");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /scan HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let r = read_request(&raw[..]).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn content_length_is_case_insensitive() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-LENGTH: 2\r\n\r\nhi";
        let r = read_request(&raw[..]).unwrap();
        assert_eq!(r.body, b"hi");
    }

    #[test]
    fn content_type_is_normalized_to_the_media_type() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Type: Application/X-NDJSON; charset=utf-8\r\ncontent-length: 2\r\n\r\nhi";
        let r = read_request(&raw[..]).unwrap();
        assert_eq!(r.content_type, "application/x-ndjson");
        let raw = b"GET /health HTTP/1.1\r\n\r\n";
        assert_eq!(read_request(&raw[..]).unwrap().content_type, "");
    }

    #[test]
    fn rejects_oversized_body_with_413() {
        let raw = format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        let err = read_request(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
        assert!(err.message.contains("exceeds limit"));
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        let err = read_request(&raw[..]).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("mid-body"), "{}", err.message);
    }

    #[test]
    fn rejects_garbage_request_line() {
        let raw = b"\r\n\r\n";
        assert!(read_request(&raw[..]).is_err());
    }

    #[test]
    fn rejects_endless_header_line_with_431() {
        let mut raw = b"GET / HTTP/1.1\r\nx-junk: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 100));
        let err = read_request(&raw[..]).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn rejects_oversized_header_section_with_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        // Many individually small headers that together blow the budget.
        for i in 0..2000 {
            raw.extend(format!("x-h{i}: {:0100}\r\n", i).into_bytes());
        }
        raw.extend(b"\r\n");
        let err = read_request(&raw[..]).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn rejects_too_many_headers_with_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..MAX_HEADER_COUNT + 1 {
            raw.extend(format!("x-{i}: 1\r\n").into_bytes());
        }
        raw.extend(b"\r\n");
        let err = read_request(&raw[..]).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn header_section_just_under_the_cap_parses() {
        let mut raw = b"POST /x HTTP/1.1\r\ncontent-length: 2\r\n".to_vec();
        raw.extend(format!("x-pad: {}\r\n", "b".repeat(4000)).into_bytes());
        raw.extend(b"\r\nhi");
        let r = read_request(&raw[..]).unwrap();
        assert_eq!(r.body, b"hi");
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::json(200, &serde_json::json!({"ok": true}));
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json"));
        assert!(text.contains("content-length: 11"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn reason_phrases_match_status() {
        for (status, phrase) in [
            (429, "429 Too Many Requests"),
            (500, "500 Internal Server Error"),
            (503, "503 Service Unavailable"),
            (418, "418 Unknown"),
        ] {
            let mut out = Vec::new();
            write_response(&mut out, &Response::error(status, "err", "x")).unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(
                text.starts_with(&format!("HTTP/1.1 {phrase}\r\n")),
                "{status}: {}",
                text.lines().next().unwrap()
            );
        }
    }

    #[test]
    fn text_response_carries_content_type() {
        let resp = Response::text(200, "text/plain; charset=utf-8", "hello".to_string());
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("content-type: text/plain; charset=utf-8"));
        assert!(text.ends_with("hello"));
    }

    #[test]
    fn error_helper_shapes_the_standard_envelope() {
        let resp = Response::error(404, "not_found", "no such route");
        assert_eq!(resp.status, 404);
        let body: serde_json::Value =
            serde_json::from_slice(&resp.body).expect("error body is JSON");
        assert_eq!(body["error"]["code"], "not_found");
        assert_eq!(body["error"]["message"], "no such route");
    }

    #[test]
    fn read_errors_carry_machine_codes() {
        let raw = format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(read_request(raw.as_bytes()).unwrap_err().code, "body_too_large");
        let mut raw = b"GET / HTTP/1.1\r\nx-junk: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 100));
        assert_eq!(read_request(&raw[..]).unwrap_err().code, "header_too_large");
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        assert_eq!(read_request(&raw[..]).unwrap_err().code, "bad_request");
    }
}
