//! Hand-rolled HTTP/1.1 request parsing and response serialization —
//! just enough for a JSON API driven by `curl` and tests.

use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted body size (1 MiB of JSON records per request).
pub const MAX_BODY: usize = 1 << 20;

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component, e.g. `/health` (query strings are not split off).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// A response to serialize.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes; content type is always `application/json`.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: &serde_json::Value) -> Self {
        Response {
            status,
            body: value.to_string().into_bytes(),
        }
    }

    /// A JSON error `{ "error": message }`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(status, &serde_json::json!({ "error": message }))
    }
}

/// Reads one request from a stream.
///
/// # Errors
///
/// Returns a human-readable error for malformed requests, oversized
/// bodies, or I/O failures.
pub fn read_request<R: Read>(stream: R) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|e| format!("i/o error: {e}"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| "missing request path".to_string())?
        .to_string();

    // Headers: we only care about Content-Length.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("i/o error: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".to_string());
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length `{}`", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds limit"));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    Ok(Request { method, path, body })
}

/// Writes a response to a stream.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_response<W: Write>(mut stream: W, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        response.status,
        reason,
        response.body.len()
    )?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /health HTTP/1.1\r\nhost: x\r\n\r\n";
        let r = read_request(&raw[..]).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/health");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /scan HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let r = read_request(&raw[..]).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn content_length_is_case_insensitive() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-LENGTH: 2\r\n\r\nhi";
        let r = read_request(&raw[..]).unwrap();
        assert_eq!(r.body, b"hi");
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        let err = read_request(raw.as_bytes()).unwrap_err();
        assert!(err.contains("exceeds limit"));
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
        assert!(read_request(&raw[..]).unwrap_err().contains("short body"));
    }

    #[test]
    fn rejects_garbage_request_line() {
        let raw = b"\r\n\r\n";
        assert!(read_request(&raw[..]).is_err());
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::json(200, &serde_json::json!({"ok": true}));
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn error_helper_shapes_body() {
        let resp = Response::error(404, "no such route");
        assert_eq!(resp.status, 404);
        assert!(String::from_utf8(resp.body).unwrap().contains("no such route"));
    }
}
