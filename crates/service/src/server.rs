//! TCP front end: a fixed worker pool over a bounded accept queue.
//!
//! The old shape — one spawned thread per connection, serve forever — had
//! three failure modes this module closes:
//!
//! * **Unbounded concurrency.** A connection flood spawned a thread each;
//!   now `workers` threads drain a queue of at most `queue_capacity`
//!   waiting connections, and anything beyond that is shed immediately
//!   with `503 Service Unavailable` (counted in
//!   `ensemfdet_http_rejected_total`).
//! * **Slow clients held threads forever.** Every accepted socket now gets
//!   a read and a write deadline; a client that stalls mid-request is cut
//!   off with `408 Request Timeout` instead of pinning a worker.
//! * **No shutdown.** `run(self) -> !` leaked the accept loop and every
//!   worker. [`Server::start`] returns a [`ServerHandle`] whose
//!   [`shutdown`](ServerHandle::shutdown) drains queued connections,
//!   stops the accept loop, and joins every thread.

use crate::api::{lock_recover, route_label, Api};
use crate::http::{read_request, write_response, Response};
use ensemfdet_telemetry::ServiceMetrics;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the TCP front end.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond this,
    /// connections are shed with 503.
    pub queue_capacity: usize,
    /// Per-connection read deadline (stalled clients get 408).
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Accept-queue state shared between the accept loop and the workers.
struct PoolState {
    queue: VecDeque<TcpStream>,
    stopping: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    available: Condvar,
}

impl Shared {
    fn signal_stop(&self) {
        lock_recover(&self.state).stopping = true;
        self.available.notify_all();
    }
}

/// A bound, not-yet-running HTTP server.
pub struct Server {
    listener: TcpListener,
    api: Arc<Api>,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral test port) with the
    /// default [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, api: Api) -> std::io::Result<Self> {
        Self::bind_with(addr, api, ServerConfig::default())
    }

    /// Binds with explicit tunables.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `queue_capacity == 0`.
    pub fn bind_with(addr: &str, api: Api, config: ServerConfig) -> std::io::Result<Self> {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "need a queue of at least one");
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            api: Arc::new(api),
            config,
        })
    }

    /// The bound address (useful with ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the worker pool and the accept loop on background threads.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                stopping: false,
            }),
            available: Condvar::new(),
        });
        let metrics = self.api.metrics().clone();

        let workers: Vec<JoinHandle<()>> = (0..self.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let api = Arc::clone(&self.api);
                let config = self.config;
                std::thread::Builder::new()
                    .name(format!("ensemfdet-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &api, &config))
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let config = self.config;
            std::thread::Builder::new()
                .name("ensemfdet-accept".into())
                .spawn(move || accept_loop(&self.listener, &shared, &metrics, &config))
                .expect("spawn accept loop")
        };

        Ok(ServerHandle {
            addr,
            api: self.api,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// Serves until shut down — which, without a [`ServerHandle`] to call,
    /// means until the process exits. This is the `main` entry point.
    ///
    /// # Errors
    ///
    /// Propagates startup failures.
    pub fn run(self) -> std::io::Result<()> {
        self.start()?.join();
        Ok(())
    }
}

/// A running server: the address it listens on and the threads serving it.
pub struct ServerHandle {
    addr: SocketAddr,
    api: Arc<Api>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service metrics (shared with the [`Api`]).
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        self.api.metrics()
    }

    /// Blocks until the server stops (another thread calling
    /// [`shutdown`](Self::shutdown), or a fatal accept error).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Graceful shutdown: stop accepting, let workers drain the queue,
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.signal_stop();
        // The accept loop is parked in `accept()`; poke it awake.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = accept.join();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Shared,
    metrics: &ServiceMetrics,
    config: &ServerConfig,
) {
    let mut consecutive_errors = 0u32;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                consecutive_errors = 0;
                stream
            }
            Err(e) => {
                consecutive_errors += 1;
                if consecutive_errors > 64 {
                    eprintln!("accept loop giving up: {e}");
                    break;
                }
                eprintln!("accept error: {e}");
                continue;
            }
        };
        {
            let mut state = lock_recover(&shared.state);
            if state.stopping {
                break;
            }
            if state.queue.len() >= config.queue_capacity {
                drop(state);
                shed(stream, metrics, config);
                continue;
            }
            state.queue.push_back(stream);
            metrics.queue_depth.set(state.queue.len() as i64);
        }
        shared.available.notify_one();
    }
    // Whatever the exit path, release the workers.
    shared.signal_stop();
}

/// Rejects a connection the queue has no room for: `503` and close. Runs
/// on the accept thread, so the write deadline keeps a non-reading client
/// from stalling accepts.
fn shed(stream: TcpStream, metrics: &ServiceMetrics, config: &ServerConfig) {
    metrics.rejected.inc();
    metrics.requests.inc("shed", 503);
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = write_response(
        &stream,
        &Response::error(503, "at_capacity", "server at capacity, retry later"),
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn worker_loop(shared: &Shared, api: &Api, config: &ServerConfig) {
    let metrics = api.metrics();
    loop {
        let stream = {
            let mut state = lock_recover(&shared.state);
            loop {
                if let Some(s) = state.queue.pop_front() {
                    metrics.queue_depth.set(state.queue.len() as i64);
                    break Some(s);
                }
                if state.stopping {
                    break None;
                }
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(stream) = stream else { return };
        metrics.workers_busy.inc();
        handle_connection(&stream, api, config);
        metrics.workers_busy.dec();
    }
}

fn handle_connection(stream: &TcpStream, api: &Api, config: &ServerConfig) {
    let metrics = api.metrics();
    let start = Instant::now();
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let (route, deprecated, response) = match read_request(stream) {
        Ok(request) => {
            let (route, deprecated) = route_label(&request.method, &request.path);
            (route, deprecated, api.handle(&request))
        }
        Err(e) => ("invalid", false, e.to_response()),
    };
    if deprecated {
        metrics.deprecated_requests.inc(route, response.status);
    } else {
        metrics.requests.inc(route, response.status);
    }
    metrics.request_duration.observe_duration(start.elapsed());
    if let Err(e) = write_response(stream, &response) {
        let peer = stream.peer_addr().ok();
        eprintln!("write error to {peer:?}: {e}");
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiConfig;
    use ensemfdet::{EnsemFdetConfig, MonitorConfig};
    use std::io::{Read, Write};

    fn quick_api() -> Api {
        Api::new(ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 6,
                    sample_ratio: 0.5,
                    seed: 2,
                    ..Default::default()
                },
                scan_interval: 1_000_000,
                alert_threshold: 3,
                min_transactions: 0,
            },
            ..Default::default()
        })
    }

    fn spawn_server() -> ServerHandle {
        Server::bind("127.0.0.1:0", quick_api())
            .expect("bind")
            .start()
            .expect("start")
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("recv");
        out
    }

    #[test]
    fn health_over_a_real_socket() {
        let server = spawn_server();
        let resp = roundtrip(server.addr(), "GET /health HTTP/1.1\r\nhost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("\"status\":\"ok\""));
        server.shutdown();
    }

    #[test]
    fn full_ingest_scan_workflow_over_socket() {
        let server = spawn_server();
        let addr = server.addr();
        // Build a ring + background in one POST.
        let mut records = Vec::new();
        for b in 0..6 {
            for s in 0..4 {
                records.push(format!("[\"bot-{b}\",\"ring-{s}\"]"));
            }
        }
        for p in 0..40 {
            records.push(format!("[\"pin-{p}\",\"store-{}\"]", p % 15));
        }
        let body = format!("{{\"records\":[{}]}}", records.join(","));
        let post = format!(
            "POST /transactions HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = roundtrip(addr, &post);
        assert!(resp.contains("\"ingested\":64"), "{resp}");

        let resp = roundtrip(addr, "POST /scan HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("bot-"), "no bot flagged: {resp}");

        let resp = roundtrip(addr, "GET /stats HTTP/1.1\r\n\r\n");
        assert!(resp.contains("\"users\":46"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_over_socket() {
        let server = spawn_server();
        let resp = roundtrip(
            server.addr(),
            "POST /transactions HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyz",
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = spawn_server();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || roundtrip(addr, "GET /health HTTP/1.1\r\n\r\n")))
            .collect();
        for h in handles {
            let resp = h.join().expect("thread");
            assert!(resp.starts_with("HTTP/1.1 200"));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let server = spawn_server();
        let addr = server.addr();
        assert!(roundtrip(addr, "GET /health HTTP/1.1\r\n\r\n").contains("200"));
        server.shutdown();
        // The listener is gone: a rebind on the exact address succeeds.
        let rebound = TcpListener::bind(addr).expect("port released after shutdown");
        drop(rebound);
    }

    #[test]
    fn stalled_client_is_timed_out_not_leaked() {
        let api = quick_api();
        let server = Server::bind_with(
            "127.0.0.1:0",
            api,
            ServerConfig {
                read_timeout: Duration::from_millis(100),
                ..Default::default()
            },
        )
        .expect("bind")
        .start()
        .expect("start");

        // Open a connection, send half a request, then stall.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /scan HTTP/1.1\r\ncontent-length: 100\r\n\r\npartial")
            .expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("recv");
        assert!(out.starts_with("HTTP/1.1 408 Request Timeout"), "{out}");

        // The worker is free again: a normal request still succeeds.
        let resp = roundtrip(server.addr(), "GET /health HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn endless_headers_get_431_over_socket() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"GET /health HTTP/1.1\r\n").expect("send");
        // Stream junk headers until the server cuts us off.
        let mut out = String::new();
        loop {
            if stream.write_all(b"x-junk: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n").is_err() {
                break;
            }
            stream.flush().ok();
            let mut probe = [0u8; 1024];
            stream.set_read_timeout(Some(Duration::from_millis(5))).ok();
            match stream.read(&mut probe) {
                Ok(0) => break,
                Ok(n) => {
                    out.push_str(&String::from_utf8_lossy(&probe[..n]));
                    if out.contains("\r\n\r\n") {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");
        server.shutdown();
    }

    #[test]
    fn saturated_pool_sheds_with_503() {
        // One worker, queue of one: a stalled connection occupies the
        // worker, a second waits, a third must be shed.
        let server = Server::bind_with(
            "127.0.0.1:0",
            quick_api(),
            ServerConfig {
                workers: 1,
                queue_capacity: 1,
                read_timeout: Duration::from_secs(2),
                ..Default::default()
            },
        )
        .expect("bind")
        .start()
        .expect("start");
        let addr = server.addr();
        let metrics = Arc::clone(server.metrics());

        // Occupy the worker with a half-sent request.
        let mut occupier = TcpStream::connect(addr).expect("connect occupier");
        occupier.write_all(b"GET /health").expect("send partial");
        let t0 = Instant::now();
        while metrics.workers_busy.get() < 1 {
            assert!(t0.elapsed() < Duration::from_secs(5), "worker never picked up");
            std::thread::yield_now();
        }

        // Fill the queue with a second idle connection.
        let waiter = TcpStream::connect(addr).expect("connect waiter");
        while metrics.queue_depth.get() < 1 {
            assert!(t0.elapsed() < Duration::from_secs(5), "queue never filled");
            std::thread::yield_now();
        }

        // The next connection is over capacity: shed, fast, no hang.
        let resp = roundtrip(addr, "GET /health HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 503 Service Unavailable"), "{resp}");
        assert!(metrics.rejected.get() >= 1);

        // Release the worker; the waiter gets served.
        occupier.write_all(b" HTTP/1.1\r\n\r\n").expect("finish request");
        let mut out = String::new();
        occupier.read_to_string(&mut out).expect("occupier response");
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        drop(waiter);
        server.shutdown();
    }
}
