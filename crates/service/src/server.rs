//! TCP accept loop: one thread per connection, close after each response.

use crate::api::Api;
use crate::http::{read_request, write_response, Response};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// A bound, running-on-demand HTTP server.
pub struct Server {
    listener: TcpListener,
    api: Arc<Api>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral test port).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, api: Api) -> std::io::Result<Self> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            api: Arc::new(api),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the current thread.
    pub fn run(self) -> ! {
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    let api = Arc::clone(&self.api);
                    std::thread::spawn(move || handle_connection(stream, &api));
                }
                Err(e) => eprintln!("accept error: {e}"),
            }
        }
        unreachable!("TcpListener::incoming never returns None")
    }

    /// Serves on a background thread; returns the bound address. The
    /// thread runs until the process exits — intended for tests and
    /// examples.
    pub fn run_background(self) -> std::io::Result<std::net::SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::spawn(move || self.run());
        Ok(addr)
    }
}

fn handle_connection(stream: TcpStream, api: &Api) {
    let peer = stream.peer_addr().ok();
    let response = match read_request(&stream) {
        Ok(request) => api.handle(&request),
        Err(message) => Response::error(400, &message),
    };
    if let Err(e) = write_response(&stream, &response) {
        eprintln!("write error to {peer:?}: {e}");
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiConfig;
    use ensemfdet::{EnsemFdetConfig, MonitorConfig};
    use std::io::{Read, Write};

    fn spawn_server() -> std::net::SocketAddr {
        let api = Api::new(ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 6,
                    sample_ratio: 0.5,
                    seed: 2,
                    ..Default::default()
                },
                scan_interval: 1_000_000,
                alert_threshold: 3,
                min_transactions: 0,
            },
        });
        Server::bind("127.0.0.1:0", api)
            .expect("bind")
            .run_background()
            .expect("addr")
    }

    fn roundtrip(addr: std::net::SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("recv");
        out
    }

    #[test]
    fn health_over_a_real_socket() {
        let addr = spawn_server();
        let resp = roundtrip(addr, "GET /health HTTP/1.1\r\nhost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("\"status\":\"ok\""));
    }

    #[test]
    fn full_ingest_scan_workflow_over_socket() {
        let addr = spawn_server();
        // Build a ring + background in one POST.
        let mut records = Vec::new();
        for b in 0..6 {
            for s in 0..4 {
                records.push(format!("[\"bot-{b}\",\"ring-{s}\"]"));
            }
        }
        for p in 0..40 {
            records.push(format!("[\"pin-{p}\",\"store-{}\"]", p % 15));
        }
        let body = format!("{{\"records\":[{}]}}", records.join(","));
        let post = format!(
            "POST /transactions HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let resp = roundtrip(addr, &post);
        assert!(resp.contains("\"ingested\":64"), "{resp}");

        let resp = roundtrip(addr, "POST /scan HTTP/1.1\r\ncontent-length: 0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("bot-"), "no bot flagged: {resp}");

        let resp = roundtrip(addr, "GET /stats HTTP/1.1\r\n\r\n");
        assert!(resp.contains("\"users\":46"), "{resp}");
    }

    #[test]
    fn malformed_request_gets_400_over_socket() {
        let addr = spawn_server();
        let resp = roundtrip(addr, "POST /transactions HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyz");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }

    #[test]
    fn concurrent_requests_are_served() {
        let addr = spawn_server();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    roundtrip(addr, "GET /health HTTP/1.1\r\n\r\n")
                })
            })
            .collect();
        for h in handles {
            let resp = h.join().expect("thread");
            assert!(resp.starts_with("HTTP/1.1 200"));
        }
    }
}
