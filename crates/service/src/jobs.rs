//! The scan job store: a bounded queue of asynchronous scan jobs plus a
//! ring of recent results.
//!
//! `POST /v1/scans` enqueues here and returns immediately; the scan
//! executor (one dedicated thread, see [`crate::api::Api`]) drains the
//! queue, runs the ensemble against the job's pinned snapshot, and
//! publishes the epoch-tagged result back into the store. The store is a
//! single small mutex + condvars — every operation is O(1)-ish
//! bookkeeping, never detection work, so holding the lock is always
//! brief.

use ensemfdet::pipeline::Snapshot;
use ensemfdet::{EnsemFdetConfig, ReuseStats, ScoringConfig};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks the store's mutex, recovering from poisoning: job bookkeeping
/// stays structurally valid even if a panic interrupted an update, and a
/// wedged job store would take the whole scan pipeline down with it.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a queued scan job should run: the pinned snapshot (so the epoch
/// reported at enqueue time is exactly the epoch scanned), the effective
/// detector configuration (defaults + per-request overrides), and the
/// vote threshold.
#[derive(Clone, Debug)]
pub struct ScanSpec {
    /// The snapshot the scan runs on.
    pub snapshot: Arc<Snapshot>,
    /// Effective detector configuration.
    pub config: EnsemFdetConfig,
    /// Vote threshold for flagging.
    pub threshold: u32,
    /// Run via the executor's incremental path (dirty-sample reuse with
    /// fallback to a full scan) instead of an unconditional full scan.
    /// Either way the flagged set is the same — see
    /// [`ensemfdet::pipeline::ScanRunner::run_incremental`].
    pub incremental: bool,
    /// Worker threads for the ensemble pass (`0` = auto). A wall-clock
    /// knob only: results are identical for every worker count, so it
    /// lives outside [`EnsemFdetConfig`] and never perturbs the
    /// incremental cache's config-equality contract.
    pub workers: usize,
}

/// Lifecycle of a scan job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// Picked up by the executor, ensemble pass in progress.
    Running,
    /// Finished; the result is published.
    Done,
    /// The executor could not complete the job.
    Failed,
}

impl JobState {
    /// The lowercase wire name (`"queued"`, `"running"`, …).
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// The hybrid-scoring slice of a published scan result: the effective
/// scoring configuration, the accounts the fused score flagged, and the
/// per-account component breakdown clients use to explain *why* an
/// account was flagged.
#[derive(Clone, Debug)]
pub struct ScoringResultView {
    /// The scoring configuration the fusion ran with.
    pub config: ScoringConfig,
    /// Account keys whose fused hybrid score crossed
    /// `hybrid_threshold`.
    pub hybrid_flagged: Vec<String>,
    /// Per-account `[vote, spectral, kcore, hybrid]` scores for every
    /// account flagged by either the vote threshold or the hybrid
    /// threshold (the union), sorted by key.
    pub account_scores: Vec<(String, [f64; 4])>,
    /// Wall-clock of the `[vote, spectral, kcore]` component passes, in
    /// milliseconds.
    pub component_millis: [f64; 3],
}

/// A published scan result, with ids already translated back to the
/// string keys clients speak.
#[derive(Clone, Debug)]
pub struct ScanResultView {
    /// Id of the job that produced this result.
    pub job_id: u64,
    /// Epoch of the snapshot scanned.
    pub epoch: u64,
    /// Transactions in that snapshot.
    pub transactions: usize,
    /// Flagged account keys (every account at/above the threshold).
    pub flagged: Vec<String>,
    /// Accounts crossing the threshold for the first time ever.
    pub new_alerts: Vec<String>,
    /// Effective detector configuration the scan ran with.
    pub config: EnsemFdetConfig,
    /// Vote threshold used.
    pub threshold: u32,
    /// Ensemble wall-clock in milliseconds.
    pub scan_millis: f64,
    /// How the scan was produced: full vs incremental, fallback reason,
    /// samples reused vs re-peeled, and the delta's footprint.
    pub reuse: ReuseStats,
    /// Worker threads the ensemble pass actually ran with.
    pub workers: usize,
    /// Hybrid-scoring breakdown, present when the scan's config enabled
    /// the scoring fusion.
    pub scoring: Option<ScoringResultView>,
}

/// One job's externally visible record.
#[derive(Clone, Debug)]
pub struct JobView {
    /// Job id (monotonic).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Epoch of the snapshot the job is pinned to.
    pub epoch: u64,
    /// Time spent queued (up to now, or until the executor started it).
    pub queue_wait: Duration,
    /// Time spent running, if started (up to now, or until it finished).
    pub run_time: Option<Duration>,
    /// The published result, when `Done`.
    pub result: Option<Arc<ScanResultView>>,
    /// The failure message, when `Failed`.
    pub error: Option<String>,
}

#[derive(Debug)]
struct Job {
    state: JobState,
    epoch: u64,
    /// Present while the job is queued; taken by the executor.
    spec: Option<ScanSpec>,
    enqueued_at: Instant,
    started_at: Option<Instant>,
    finished_at: Option<Instant>,
    result: Option<Arc<ScanResultView>>,
    error: Option<String>,
}

impl Job {
    fn view(&self, id: u64) -> JobView {
        JobView {
            id,
            state: self.state,
            epoch: self.epoch,
            queue_wait: self
                .started_at
                .unwrap_or_else(Instant::now)
                .duration_since(self.enqueued_at),
            run_time: self
                .started_at
                .map(|s| self.finished_at.unwrap_or_else(Instant::now).duration_since(s)),
            result: self.result.clone(),
            error: self.error.clone(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    pending: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
    /// Finished job ids in completion order; older entries past the ring
    /// capacity are pruned from `jobs`.
    finished: VecDeque<u64>,
    latest: Option<Arc<ScanResultView>>,
    stopping: bool,
}

/// Outcome of a [`JobStore::lookup`]: the three externally
/// distinguishable fates of a job id.
#[derive(Clone, Debug)]
pub enum JobLookup {
    /// The job is still tracked (queued, running, or in the ring).
    Found(JobView),
    /// The id was issued, but its terminal record fell off the
    /// recent-results ring and was pruned (HTTP 410).
    Evicted,
    /// The id was never issued by this store (HTTP 404).
    Unknown,
}

/// Errors enqueueing a scan job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The pending queue is at capacity — retry later (HTTP 429).
    QueueFull,
    /// The store is shutting down (HTTP 503).
    Stopping,
}

/// The bounded scan job queue and result store.
#[derive(Debug)]
pub struct JobStore {
    inner: Mutex<Inner>,
    /// Signals the executor that work (or shutdown) is available.
    work_available: Condvar,
    /// Signals synchronous waiters that some job reached a terminal
    /// state.
    job_finished: Condvar,
    capacity: usize,
    ring: usize,
}

impl JobStore {
    /// A store whose pending queue holds at most `capacity` jobs and
    /// which keeps the `ring` most recent finished jobs queryable.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `ring == 0`.
    pub fn new(capacity: usize, ring: usize) -> Self {
        assert!(capacity > 0, "need a queue of at least one");
        assert!(ring > 0, "need a result ring of at least one");
        JobStore {
            inner: Mutex::new(Inner::default()),
            work_available: Condvar::new(),
            job_finished: Condvar::new(),
            capacity,
            ring,
        }
    }

    /// Enqueues a scan job, returning its id.
    ///
    /// # Errors
    ///
    /// [`EnqueueError::QueueFull`] when the pending queue is at
    /// capacity, [`EnqueueError::Stopping`] during shutdown.
    pub fn enqueue(&self, spec: ScanSpec) -> Result<u64, EnqueueError> {
        let mut inner = lock_recover(&self.inner);
        if inner.stopping {
            return Err(EnqueueError::Stopping);
        }
        if inner.pending.len() >= self.capacity {
            return Err(EnqueueError::QueueFull);
        }
        inner.next_id += 1;
        let id = inner.next_id;
        let epoch = spec.snapshot.epoch;
        inner.jobs.insert(
            id,
            Job {
                state: JobState::Queued,
                epoch,
                spec: Some(spec),
                enqueued_at: Instant::now(),
                started_at: None,
                finished_at: None,
                result: None,
                error: None,
            },
        );
        inner.pending.push_back(id);
        drop(inner);
        self.work_available.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available (returning it marked `Running`)
    /// or the store is stopping (returning `None`). Executor-side.
    pub fn next_job(&self) -> Option<(u64, ScanSpec, Duration)> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(id) = inner.pending.pop_front() {
                let job = inner.jobs.get_mut(&id).expect("pending job exists");
                job.state = JobState::Running;
                let now = Instant::now();
                job.started_at = Some(now);
                let wait = now.duration_since(job.enqueued_at);
                let spec = job.spec.take().expect("queued job carries its spec");
                return Some((id, spec, wait));
            }
            if inner.stopping {
                return None;
            }
            inner = self
                .work_available
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Publishes a finished job's result and makes it `latest`.
    pub fn complete(&self, id: u64, result: ScanResultView) {
        let result = Arc::new(result);
        let mut inner = lock_recover(&self.inner);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.state = JobState::Done;
            job.finished_at = Some(Instant::now());
            job.result = Some(result.clone());
        }
        inner.latest = Some(result);
        self.finish(&mut inner, id);
        drop(inner);
        self.job_finished.notify_all();
    }

    /// Marks a job failed.
    pub fn fail(&self, id: u64, error: impl Into<String>) {
        let mut inner = lock_recover(&self.inner);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.state = JobState::Failed;
            job.finished_at = Some(Instant::now());
            job.error = Some(error.into());
        }
        self.finish(&mut inner, id);
        drop(inner);
        self.job_finished.notify_all();
    }

    /// Ring bookkeeping: remember the finished id, prune ids that fell
    /// off the ring (only terminal jobs are ever pruned).
    fn finish(&self, inner: &mut Inner, id: u64) {
        inner.finished.push_back(id);
        while inner.finished.len() > self.ring {
            if let Some(old) = inner.finished.pop_front() {
                if inner.jobs.get(&old).is_some_and(|j| j.state.is_terminal()) {
                    inner.jobs.remove(&old);
                }
            }
        }
    }

    /// A point-in-time view of one job, if it is still known (queued,
    /// running, or within the recent-results ring). Collapses
    /// [`lookup`](Self::lookup)'s evicted/unknown distinction to `None`
    /// for callers that do not care why the job is gone.
    pub fn get(&self, id: u64) -> Option<JobView> {
        match self.lookup(id) {
            JobLookup::Found(view) => Some(view),
            JobLookup::Evicted | JobLookup::Unknown => None,
        }
    }

    /// A point-in-time lookup that distinguishes *evicted* ids from ids
    /// that never existed.
    ///
    /// Ids are handed out monotonically from 1 and terminal jobs are
    /// pruned once they fall off the recent-results ring, so an id that is
    /// within `1..=last issued` but absent from the map must have been
    /// issued and later evicted — its result is gone for capacity reasons,
    /// not because the caller made the id up. The API layer maps the two
    /// cases to HTTP 410 (`gone`) and 404 (`unknown_job`) respectively.
    pub fn lookup(&self, id: u64) -> JobLookup {
        let inner = lock_recover(&self.inner);
        match inner.jobs.get(&id) {
            Some(job) => JobLookup::Found(job.view(id)),
            None if id >= 1 && id <= inner.next_id => JobLookup::Evicted,
            None => JobLookup::Unknown,
        }
    }

    /// The most recently published scan result, if any scan has
    /// completed.
    pub fn latest(&self) -> Option<Arc<ScanResultView>> {
        lock_recover(&self.inner).latest.clone()
    }

    /// Blocks until job `id` reaches a terminal state and returns its
    /// view, or `None` if the job is unknown / the store stops first.
    /// Backs the deprecated synchronous `POST /scan` alias.
    pub fn wait(&self, id: u64) -> Option<JobView> {
        let mut inner = lock_recover(&self.inner);
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(job) if job.state.is_terminal() => return Some(job.view(id)),
                Some(_) if inner.stopping => return None,
                Some(_) => {
                    inner = self
                        .job_finished
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.inner).pending.len()
    }

    /// Stops the store: wakes the executor (which then exits) and every
    /// synchronous waiter.
    pub fn stop(&self) {
        lock_recover(&self.inner).stopping = true;
        self.work_available.notify_all();
        self.job_finished.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::BipartiteGraph;

    fn spec(epoch: u64) -> ScanSpec {
        ScanSpec {
            snapshot: Arc::new(Snapshot {
                epoch,
                transactions: 0,
                graph: Arc::new(BipartiteGraph::from_edges(0, 0, vec![]).unwrap()),
                delta: None,
            }),
            config: EnsemFdetConfig::default(),
            threshold: 1,
            incremental: false,
            workers: 1,
        }
    }

    fn result(job_id: u64, epoch: u64) -> ScanResultView {
        ScanResultView {
            job_id,
            epoch,
            transactions: 0,
            flagged: vec![],
            new_alerts: vec![],
            config: EnsemFdetConfig::default(),
            threshold: 1,
            scan_millis: 1.0,
            reuse: ReuseStats::full(0),
            workers: 1,
            scoring: None,
        }
    }

    #[test]
    fn enqueue_run_complete_lifecycle() {
        let store = JobStore::new(4, 4);
        let id = store.enqueue(spec(3)).unwrap();
        assert_eq!(store.get(id).unwrap().state, JobState::Queued);
        assert_eq!(store.get(id).unwrap().epoch, 3);
        assert_eq!(store.queue_depth(), 1);

        let (got, s, _wait) = store.next_job().unwrap();
        assert_eq!(got, id);
        assert_eq!(s.snapshot.epoch, 3);
        assert_eq!(store.get(id).unwrap().state, JobState::Running);
        assert_eq!(store.queue_depth(), 0);

        store.complete(id, result(id, 3));
        let view = store.get(id).unwrap();
        assert_eq!(view.state, JobState::Done);
        assert_eq!(view.result.as_ref().unwrap().epoch, 3);
        assert_eq!(store.latest().unwrap().job_id, id);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let store = JobStore::new(2, 4);
        store.enqueue(spec(1)).unwrap();
        store.enqueue(spec(1)).unwrap();
        assert_eq!(store.enqueue(spec(1)), Err(EnqueueError::QueueFull));
        // Draining one frees a slot.
        let (id, _, _) = store.next_job().unwrap();
        store.fail(id, "boom");
        store.enqueue(spec(1)).unwrap();
    }

    #[test]
    fn unknown_job_is_none() {
        let store = JobStore::new(2, 2);
        assert!(store.get(42).is_none());
    }

    #[test]
    fn ring_prunes_old_finished_jobs_only() {
        let store = JobStore::new(8, 2);
        let ids: Vec<u64> = (0..4).map(|_| store.enqueue(spec(1)).unwrap()).collect();
        for _ in 0..3 {
            let (id, _, _) = store.next_job().unwrap();
            store.complete(id, result(id, 1));
        }
        // Ring of 2: the first finished job fell off; the last queued one
        // is still tracked.
        assert!(store.get(ids[0]).is_none(), "oldest finished job pruned");
        assert!(store.get(ids[1]).is_some());
        assert!(store.get(ids[2]).is_some());
        assert_eq!(store.get(ids[3]).unwrap().state, JobState::Queued);
        // The pruned id is *evicted*, not unknown: it was issued.
        assert!(
            matches!(store.lookup(ids[0]), JobLookup::Evicted),
            "issued-then-pruned id must read as evicted"
        );
        assert!(matches!(store.lookup(ids[3]), JobLookup::Found(_)));
    }

    #[test]
    fn lookup_distinguishes_evicted_from_unknown() {
        let store = JobStore::new(4, 1);
        let a = store.enqueue(spec(1)).unwrap();
        let b = store.enqueue(spec(1)).unwrap();
        for _ in 0..2 {
            let (id, _, _) = store.next_job().unwrap();
            store.complete(id, result(id, 1));
        }
        // Ring of 1 keeps only the second result.
        assert!(matches!(store.lookup(a), JobLookup::Evicted));
        assert!(matches!(store.lookup(b), JobLookup::Found(_)));
        // Ids outside [1, last issued] were never handed out.
        assert!(matches!(store.lookup(0), JobLookup::Unknown));
        assert!(matches!(store.lookup(b + 1), JobLookup::Unknown));
        assert!(matches!(store.lookup(9_999), JobLookup::Unknown));
        // get() collapses both non-found cases to None.
        assert!(store.get(a).is_none());
        assert!(store.get(9_999).is_none());
    }

    #[test]
    fn failed_jobs_report_their_error() {
        let store = JobStore::new(2, 2);
        let id = store.enqueue(spec(2)).unwrap();
        let _ = store.next_job().unwrap();
        store.fail(id, "detector panicked");
        let view = store.get(id).unwrap();
        assert_eq!(view.state, JobState::Failed);
        assert_eq!(view.error.as_deref(), Some("detector panicked"));
        assert!(store.latest().is_none(), "failures do not publish results");
    }

    #[test]
    fn wait_blocks_until_terminal() {
        let store = Arc::new(JobStore::new(2, 2));
        let id = store.enqueue(spec(1)).unwrap();
        let waiter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.wait(id).map(|v| v.state))
        };
        let (got, _, _) = store.next_job().unwrap();
        store.complete(got, result(got, 1));
        assert_eq!(waiter.join().unwrap(), Some(JobState::Done));
    }

    #[test]
    fn stop_releases_executor_and_waiters() {
        let store = Arc::new(JobStore::new(2, 2));
        let exec = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.next_job().is_none())
        };
        store.stop();
        assert!(exec.join().unwrap(), "executor released with None");
        assert_eq!(store.enqueue(spec(1)), Err(EnqueueError::Stopping));
    }
}
