//! `ensemfdet-serve` — run the live-monitoring HTTP service.
//!
//! ```text
//! ensemfdet-serve [--follow] [ADDR] [N] [S] [T] [SCAN_INTERVAL] [MIN_TRANSACTIONS] [WORKERS] [QUEUE] [INGEST_WORKERS]
//! # defaults:                 127.0.0.1:7878  20  0.2  10  5000  2000  8  8  0
//! ```
//!
//! `QUEUE` is the scan-job queue capacity (`429 queue_full` beyond it).
//! `INGEST_WORKERS` is the thread count for chunked `text/csv` bulk-ingest
//! parsing (`0` = auto); purely a wall-clock knob — assigned ids and all
//! downstream results are identical for every value.
//! `--follow` turns on follow mode: scans default to the incremental
//! dirty-sample-reuse path and `GET /v1/follow` reports the monitoring
//! state (see `docs/MONITORING.md`). The full HTTP contract lives in
//! `docs/API.md`.

use ensemfdet::{EnsemFdetConfig, MonitorConfig};
use ensemfdet_service::{Api, ApiConfig, Server, ServerConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let follow = args.iter().any(|a| a == "--follow");
    args.retain(|a| a != "--follow");
    let addr = args.first().cloned().unwrap_or_else(|| "127.0.0.1:7878".into());
    let parse = |i: usize, default: f64| -> f64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let config = ApiConfig {
        monitor: MonitorConfig {
            detector: EnsemFdetConfig {
                num_samples: parse(1, 20.0) as usize,
                sample_ratio: parse(2, 0.2),
                ..Default::default()
            },
            alert_threshold: parse(3, 10.0) as u32,
            scan_interval: parse(4, 5_000.0) as usize,
            min_transactions: parse(5, 2_000.0) as usize,
        },
        scan_queue_capacity: (parse(7, 8.0) as usize).max(1),
        ingest_workers: parse(8, 0.0) as usize,
        follow,
        ..Default::default()
    };
    let server_config = ServerConfig {
        workers: (parse(6, 8.0) as usize).max(1),
        ..Default::default()
    };

    let server = Server::bind_with(&addr, Api::new(config), server_config).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(2);
    });
    println!(
        "ensemfdet-serve listening on http://{} ({} workers)",
        server.local_addr().expect("bound address"),
        server_config.workers
    );
    println!("endpoints (v1): GET /v1/health, GET /v1/stats, GET /v1/config, GET /metrics,");
    println!("  POST /v1/transactions, POST /v1/scans, GET /v1/scans/{{id}}, GET /v1/scans/latest,");
    println!("  GET /v1/follow");
    println!("deprecated aliases: /health /stats /transactions /scan");
    if follow {
        println!("follow mode: scans default to incremental dirty-sample reuse");
    }
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
}
