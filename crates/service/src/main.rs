//! `ensemfdet-serve` — run the live-monitoring HTTP service.
//!
//! ```text
//! ensemfdet-serve [ADDR] [N] [S] [T] [SCAN_INTERVAL] [MIN_TRANSACTIONS]
//! # defaults:       127.0.0.1:7878  20  0.2  10  5000  2000
//! ```

use ensemfdet::{EnsemFdetConfig, MonitorConfig};
use ensemfdet_service::{Api, ApiConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args.first().cloned().unwrap_or_else(|| "127.0.0.1:7878".into());
    let parse = |i: usize, default: f64| -> f64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let config = ApiConfig {
        monitor: MonitorConfig {
            detector: EnsemFdetConfig {
                num_samples: parse(1, 20.0) as usize,
                sample_ratio: parse(2, 0.2),
                ..Default::default()
            },
            alert_threshold: parse(3, 10.0) as u32,
            scan_interval: parse(4, 5_000.0) as usize,
            min_transactions: parse(5, 2_000.0) as usize,
        },
    };

    let server = Server::bind(&addr, Api::new(config)).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(2);
    });
    println!(
        "ensemfdet-serve listening on http://{}",
        server.local_addr().expect("bound address")
    );
    println!("endpoints: GET /health, GET /stats, POST /transactions, POST /scan");
    server.run();
}
