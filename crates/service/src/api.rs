//! The application: routing and state, socket-free.

use crate::http::{Request, Response};
use ensemfdet::{CampaignMonitor, EnsemFdetConfig, MonitorConfig, ScanReport};
use ensemfdet_graph::{GraphStats, TransactionInterner};
use ensemfdet_telemetry::{ServiceMetrics, PROMETHEUS_CONTENT_TYPE};
use serde_json::{json, Value};
use std::sync::{Arc, Mutex};

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ApiConfig {
    /// Monitor settings (detector, scan cadence, alert threshold).
    pub monitor: MonitorConfig,
}

impl Default for ApiConfig {
    fn default() -> Self {
        ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 20,
                    sample_ratio: 0.2,
                    ..Default::default()
                },
                scan_interval: 5_000,
                alert_threshold: 10,
                min_transactions: 2_000,
            },
        }
    }
}

/// The label a request is counted under in
/// `ensemfdet_http_requests_total{route=…}` — the fixed route set plus
/// `"other"`, so hostile paths cannot inflate label cardinality.
pub fn route_label(_method: &str, path: &str) -> &'static str {
    match path {
        "/health" => "/health",
        "/stats" => "/stats",
        "/transactions" => "/transactions",
        "/scan" => "/scan",
        "/metrics" => "/metrics",
        _ => "other",
    }
}

struct State {
    monitor: CampaignMonitor,
    interner: TransactionInterner,
}

/// Shared, thread-safe API state.
pub struct Api {
    state: Mutex<State>,
    metrics: Arc<ServiceMetrics>,
}

impl Api {
    /// Creates the service state.
    pub fn new(config: ApiConfig) -> Self {
        Api {
            state: Mutex::new(State {
                monitor: CampaignMonitor::new(config.monitor),
                interner: TransactionInterner::new(),
            }),
            metrics: Arc::new(ServiceMetrics::new()),
        }
    }

    /// The metric set this API reports into (shared with the server's
    /// accept loop and workers).
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Routes one request. Never panics on malformed input — bad requests
    /// get a 4xx JSON error.
    pub fn handle(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/health") => self.health(),
            ("GET", "/stats") => self.stats(),
            ("GET", "/metrics") => self.metrics_page(),
            ("POST", "/transactions") => self.transactions(&request.body),
            ("POST", "/scan") => self.scan(),
            ("GET", _) | ("POST", _) => Response::error(404, "no such route"),
            _ => Response::error(405, "method not allowed"),
        }
    }

    fn health(&self) -> Response {
        let state = self.state.lock().expect("api state poisoned");
        Response::json(
            200,
            &json!({
                "status": "ok",
                "transactions": state.monitor.transactions_seen(),
                "alerted_accounts": state.monitor.alerted().len(),
            }),
        )
    }

    fn metrics_page(&self) -> Response {
        Response::text(200, PROMETHEUS_CONTENT_TYPE, self.metrics.render())
    }

    fn stats(&self) -> Response {
        let state = self.state.lock().expect("api state poisoned");
        // Rebuild the current graph snapshot for statistics.
        let (users, merchants) = (state.interner.num_users(), state.interner.num_merchants());
        let graph = snapshot(&state);
        let s = GraphStats::of(&graph);
        Response::json(
            200,
            &json!({
                "users": users,
                "merchants": merchants,
                "edges": s.num_edges,
                "avg_user_degree": s.avg_user_degree,
                "avg_merchant_degree": s.avg_merchant_degree,
                "max_merchant_degree": s.max_merchant_degree,
            }),
        )
    }

    /// Feeds one scan's outcome into the metric set.
    fn record_scan(&self, report: &ScanReport) {
        self.metrics.record_scan(report.elapsed, &report.sample_times);
        self.metrics.record_scan_stages([
            report.stages.sampling,
            report.stages.detection,
            report.stages.aggregation,
        ]);
        self.metrics.alerts.add(report.new_alerts.len() as u64);
    }

    fn transactions(&self, body: &[u8]) -> Response {
        let parsed: Value = match serde_json::from_slice(body) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
        };
        let Some(records) = parsed.get("records").and_then(Value::as_array) else {
            return Response::error(400, "expected {\"records\": [[user, merchant], …]}");
        };

        let mut state = self.state.lock().expect("api state poisoned");
        let mut ingested = 0usize;
        let mut scan_alerts: Vec<String> = Vec::new();
        for (i, record) in records.iter().enumerate() {
            let pair = record.as_array().filter(|a| a.len() >= 2);
            let (Some(user), Some(merchant)) = (
                pair.and_then(|a| a[0].as_str()),
                pair.and_then(|a| a[1].as_str()),
            ) else {
                return Response::error(400, &format!("record {i}: expected [user, merchant]"));
            };
            let u = state.interner.user(user);
            let v = state.interner.merchant(merchant);
            if let Some(report) = state.monitor.ingest(u, v) {
                self.record_scan(&report);
                scan_alerts.extend(
                    report
                        .new_alerts
                        .iter()
                        .map(|&a| state.interner.user_key(a).to_string()),
                );
            }
            ingested += 1;
        }
        self.metrics.transactions_ingested.add(ingested as u64);
        Response::json(
            200,
            &json!({
                "ingested": ingested,
                "transactions": state.monitor.transactions_seen(),
                "new_alerts": scan_alerts,
            }),
        )
    }

    fn scan(&self) -> Response {
        let mut state = self.state.lock().expect("api state poisoned");
        let report = state.monitor.scan();
        self.record_scan(&report);
        let flagged: Vec<&str> = report
            .flagged
            .iter()
            .map(|&u| state.interner.user_key(u))
            .collect();
        let new_alerts: Vec<&str> = report
            .new_alerts
            .iter()
            .map(|&u| state.interner.user_key(u))
            .collect();
        Response::json(
            200,
            &json!({
                "transactions": report.transactions_seen,
                "flagged": flagged,
                "new_alerts": new_alerts,
                "scan_millis": report.elapsed.as_secs_f64() * 1e3,
            }),
        )
    }
}

/// The current purchase graph, materialized from the monitor.
fn snapshot(state: &State) -> ensemfdet_graph::BipartiteGraph {
    state.monitor.graph_snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(api: &Api, path: &str, body: Value) -> (u16, Value) {
        let resp = api.handle(&Request {
            method: "POST".into(),
            path: path.into(),
            body: body.to_string().into_bytes(),
        });
        let parsed = serde_json::from_slice(&resp.body).unwrap_or(Value::Null);
        (resp.status, parsed)
    }

    fn get(api: &Api, path: &str) -> (u16, Value) {
        let resp = api.handle(&Request {
            method: "GET".into(),
            path: path.into(),
            body: vec![],
        });
        let parsed = serde_json::from_slice(&resp.body).unwrap_or(Value::Null);
        (resp.status, parsed)
    }

    fn quick_api() -> Api {
        Api::new(ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 20,
                    sample_ratio: 0.5,
                    seed: 3,
                    ..Default::default()
                },
                scan_interval: 1_000_000,
                alert_threshold: 15,
                min_transactions: 0,
            },
        })
    }

    #[test]
    fn health_reports_counts() {
        let api = quick_api();
        let (status, body) = get(&api, "/health");
        assert_eq!(status, 200);
        assert_eq!(body["status"], "ok");
        assert_eq!(body["transactions"], 0);
    }

    #[test]
    fn ingest_then_scan_flags_ring() {
        let api = quick_api();
        // Ring: 8 bots × 6 stores; background: 60 shoppers × 1 purchase.
        let mut records = Vec::new();
        for b in 0..8 {
            for s in 0..6 {
                records.push(json!([format!("bot-{b}"), format!("ring-{s}")]));
            }
        }
        for p in 0..60 {
            records.push(json!([format!("pin-{p}"), format!("store-{}", p % 50)]));
        }
        let (status, body) = post(&api, "/transactions", json!({ "records": records }));
        assert_eq!(status, 200);
        assert_eq!(body["ingested"], 108);

        let (status, body) = post(&api, "/scan", Value::Null);
        assert_eq!(status, 200);
        let flagged: Vec<String> = body["flagged"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        // Detection quality is covered by the core/integration suites; at
        // the service level we check the ring dominates the flag set.
        let bots = flagged.iter().filter(|k| k.starts_with("bot-")).count();
        assert!(bots >= 6, "only {bots}/8 bots flagged: {flagged:?}");
        assert!(
            bots * 2 >= flagged.len(),
            "bots are a minority of the flags: {flagged:?}"
        );
    }

    #[test]
    fn stats_reflect_ingested_graph() {
        let api = quick_api();
        post(
            &api,
            "/transactions",
            json!({ "records": [["a", "x"], ["b", "x"], ["a", "y"]] }),
        );
        let (status, body) = get(&api, "/stats");
        assert_eq!(status, 200);
        assert_eq!(body["users"], 2);
        assert_eq!(body["merchants"], 2);
        assert_eq!(body["edges"], 3);
    }

    #[test]
    fn metrics_page_reflects_activity() {
        let api = quick_api();
        post(
            &api,
            "/transactions",
            json!({ "records": [["a", "x"], ["b", "x"]] }),
        );
        post(&api, "/scan", Value::Null);
        let resp = api.handle(&Request {
            method: "GET".into(),
            path: "/metrics".into(),
            body: vec![],
        });
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, PROMETHEUS_CONTENT_TYPE);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("ensemfdet_transactions_ingested_total 2"), "{text}");
        assert!(text.contains("ensemfdet_scans_total 1"), "{text}");
        // The scan fed one per-sample timing observation per sample.
        assert!(text.contains("ensemfdet_scan_sample_duration_seconds_count 20"), "{text}");
    }

    #[test]
    fn malformed_json_is_400() {
        let api = quick_api();
        let resp = api.handle(&Request {
            method: "POST".into(),
            path: "/transactions".into(),
            body: b"not json".to_vec(),
        });
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn bad_record_shape_is_400() {
        let api = quick_api();
        let (status, body) = post(&api, "/transactions", json!({ "records": [["only-user"]] }));
        assert_eq!(status, 400);
        assert!(body["error"].as_str().unwrap().contains("record 0"));
    }

    #[test]
    fn unknown_route_is_404_unknown_method_405() {
        let api = quick_api();
        assert_eq!(get(&api, "/nope").0, 404);
        let resp = api.handle(&Request {
            method: "DELETE".into(),
            path: "/health".into(),
            body: vec![],
        });
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn route_labels_have_fixed_cardinality() {
        assert_eq!(route_label("GET", "/metrics"), "/metrics");
        assert_eq!(route_label("GET", "/../../etc/passwd"), "other");
        assert_eq!(route_label("POST", "/scan"), "/scan");
    }
}
