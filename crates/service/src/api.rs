//! The application: routing and state for the versioned v1 API,
//! socket-free.
//!
//! The ingest path and the scan path never contend:
//!
//! * `POST /v1/transactions` maps keys through a sharded, internally
//!   synchronized [`ConcurrentTransactionInterner`] (no service-wide
//!   interner mutex) and appends to a sharded [`IngestBuffer`] — it never
//!   waits on a running scan, and concurrent ingest requests interning
//!   disjoint keys never wait on each other.
//! * `POST /v1/scans` pins the freshest epoch-versioned snapshot
//!   (compaction builds the graph outside every ingest lock), enqueues a
//!   job on the bounded [`JobStore`], and returns `202` immediately. One
//!   dedicated executor thread (the `executor` module) drains the queue.
//! * `GET /v1/scans/{id}` / `GET /v1/scans/latest` read published,
//!   epoch-tagged results.
//!
//! Legacy unversioned routes (`/health`, `/stats`, `/transactions`,
//! `/scan`) remain as deprecated aliases; `POST /scan` keeps its
//! synchronous 200 contract by enqueueing and waiting for the job.

use crate::http::{Request, Response};
use crate::jobs::{EnqueueError, JobLookup, JobState, JobStore, JobView, ScanResultView, ScanSpec};
use ensemfdet::pipeline::{IngestBuffer, ScanRunner, SnapshotStore};
use ensemfdet::{
    Engine as PeelEngine, EnsemFdet, EnsemFdetConfig, IncrementalPolicy, MonitorConfig, SamplePath,
    ScoringConfig,
};
use ensemfdet_graph::loader::{parse_csv_record, split_line_chunks};
use ensemfdet_graph::{ConcurrentTransactionInterner, GraphStats};
use ensemfdet_telemetry::{ServiceMetrics, PROMETHEUS_CONTENT_TYPE};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Locks a mutex, recovering from poisoning. Every value the service
/// guards (interner, alert ledger, job bookkeeping) stays structurally
/// valid if a panicking thread unwound through an update, so serving
/// slightly stale data beats wedging every subsequent request with a
/// panic — which is what expecting the lock result did here once.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ApiConfig {
    /// Monitor settings (detector, auto-scan cadence, alert threshold).
    pub monitor: MonitorConfig,
    /// Snapshot compaction cadence in transactions: reads that tolerate
    /// staleness (auto-refresh) rebuild the graph at most this often.
    pub compaction_interval: usize,
    /// Scan jobs allowed to wait in the queue; beyond this `POST
    /// /v1/scans` answers `429 queue_full`.
    pub scan_queue_capacity: usize,
    /// Finished scan jobs kept queryable via `GET /v1/scans/{id}`.
    pub result_ring: usize,
    /// Follow mode: scans default to the incremental dirty-sample-reuse
    /// path (identical results, less work per epoch under sustained
    /// ingest). Any scan can still pick its path with the `"mode"`
    /// override; `GET /v1/follow` reports the monitoring state. See
    /// `docs/MONITORING.md`.
    pub follow: bool,
    /// When incremental scans give up on reuse and re-peel everything
    /// (oversized deltas).
    pub incremental_policy: IncrementalPolicy,
    /// Worker threads for the ensemble's sample pool (`0` = auto-detect
    /// from the machine). Purely a wall-clock knob: scan results are
    /// identical for every worker count, so it lives outside the
    /// detector config and any scan may override it per request.
    pub workers: usize,
    /// Worker threads for chunked `text/csv` bulk-ingest parsing (`0` =
    /// auto-detect). Like `workers`, purely a wall-clock knob: chunks are
    /// validated in parallel but records are interned in file order, so
    /// assigned ids and every downstream result are identical for every
    /// value.
    pub ingest_workers: usize,
}

impl Default for ApiConfig {
    fn default() -> Self {
        ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 20,
                    sample_ratio: 0.2,
                    ..Default::default()
                },
                scan_interval: 5_000,
                alert_threshold: 10,
                min_transactions: 2_000,
            },
            compaction_interval: 1_000,
            scan_queue_capacity: 8,
            result_ring: 16,
            follow: false,
            incremental_policy: IncrementalPolicy::default(),
            workers: 0,
            ingest_workers: 0,
        }
    }
}

/// The label a request is counted under in
/// `ensemfdet_http_requests_total{route=…}`, plus whether the path is a
/// deprecated alias (counted with `deprecated="true"`). The label set is
/// fixed — `/v1/scans/<anything>` collapses to `/v1/scans/{id}` — so
/// hostile paths cannot inflate label cardinality.
pub fn route_label(_method: &str, path: &str) -> (&'static str, bool) {
    match path {
        "/v1/health" => ("/v1/health", false),
        "/health" => ("/v1/health", true),
        "/v1/stats" => ("/v1/stats", false),
        "/stats" => ("/v1/stats", true),
        "/v1/transactions" => ("/v1/transactions", false),
        "/transactions" => ("/v1/transactions", true),
        "/v1/scans" => ("/v1/scans", false),
        "/scan" => ("/v1/scans", true),
        "/v1/scans/latest" => ("/v1/scans/latest", false),
        "/v1/follow" => ("/v1/follow", false),
        "/v1/config" => ("/v1/config", false),
        "/metrics" | "/v1/metrics" => ("/metrics", false),
        p if p.starts_with("/v1/scans/") => ("/v1/scans/{id}", false),
        _ => ("other", false),
    }
}

/// Everything the request handlers and the scan executor share. No
/// single big lock: the buffer is sharded, the snapshot store swaps
/// `Arc`s, the interner shards its own locks internally, and the one
/// remaining mutex (the alert ledger) is held only by the executor.
pub(crate) struct Engine {
    pub(crate) config: ApiConfig,
    pub(crate) buffer: IngestBuffer,
    pub(crate) snapshots: SnapshotStore,
    pub(crate) interner: ConcurrentTransactionInterner,
    pub(crate) runner: Mutex<ScanRunner>,
    pub(crate) jobs: JobStore,
    pub(crate) metrics: Arc<ServiceMetrics>,
    /// Transactions since the last (requested or automatic) scan.
    since_scan: AtomicUsize,
}

/// Shared, thread-safe API state plus the background scan executor.
pub struct Api {
    engine: Arc<Engine>,
    executor: Option<JoinHandle<()>>,
}

impl Api {
    /// Creates the service state and starts the scan executor thread.
    ///
    /// # Panics
    ///
    /// Panics if any cadence/capacity knob is zero or the detector
    /// configuration is invalid.
    pub fn new(config: ApiConfig) -> Self {
        assert!(config.monitor.scan_interval > 0, "scan_interval must be positive");
        assert!(
            config.monitor.alert_threshold > 0,
            "alert_threshold must be positive"
        );
        // Validate the detector config eagerly (EnsemFdet::new asserts).
        let _ = EnsemFdet::new(config.monitor.detector);
        let engine = Arc::new(Engine {
            buffer: IngestBuffer::new(),
            snapshots: SnapshotStore::new(config.compaction_interval),
            interner: ConcurrentTransactionInterner::new(),
            runner: Mutex::new(ScanRunner::new()),
            jobs: JobStore::new(config.scan_queue_capacity, config.result_ring),
            metrics: Arc::new(ServiceMetrics::new()),
            since_scan: AtomicUsize::new(0),
            config,
        });
        let executor = crate::executor::spawn(Arc::clone(&engine));
        Api {
            engine,
            executor: Some(executor),
        }
    }

    /// The metric set this API reports into (shared with the server's
    /// accept loop and workers).
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.engine.metrics
    }

    /// Routes one request. Never panics on malformed input — bad requests
    /// get a 4xx with the standard `{"error":{"code","message"}}` body.
    pub fn handle(&self, request: &Request) -> Response {
        let path = request.path.as_str();
        match (request.method.as_str(), path) {
            ("GET", "/v1/health" | "/health") => self.health(),
            ("GET", "/v1/stats" | "/stats") => self.stats(),
            ("GET", "/metrics" | "/v1/metrics") => self.metrics_page(),
            ("GET", "/v1/config") => self.config_page(),
            ("GET", "/v1/follow") => self.follow_status(),
            ("POST", "/v1/transactions" | "/transactions") => self.transactions(request),
            ("POST", "/v1/scans") => self.submit_scan(&request.body),
            ("POST", "/scan") => self.scan_sync(&request.body),
            ("GET", "/v1/scans/latest") => self.latest_scan(),
            ("GET", p) if p.starts_with("/v1/scans/") => {
                self.scan_status(&p["/v1/scans/".len()..])
            }
            ("GET", _) | ("POST", _) => Response::error(404, "not_found", "no such route"),
            _ => Response::error(405, "method_not_allowed", "method not allowed"),
        }
    }

    fn health(&self) -> Response {
        let e = &self.engine;
        Response::json(
            200,
            &json!({
                "status": "ok",
                "transactions": e.buffer.len(),
                "alerted_accounts": lock_recover(&e.runner).alerted_count(),
                "snapshot_epoch": e.snapshots.latest().epoch,
                "scan_queue_depth": e.jobs.queue_depth(),
            }),
        )
    }

    fn metrics_page(&self) -> Response {
        Response::text(200, PROMETHEUS_CONTENT_TYPE, self.engine.metrics.render())
    }

    fn config_page(&self) -> Response {
        let c = &self.engine.config;
        Response::json(
            200,
            &json!({
                "detector": c.monitor.detector,
                "alert_threshold": c.monitor.alert_threshold,
                "scan_interval": c.monitor.scan_interval,
                "min_transactions": c.monitor.min_transactions,
                "compaction_interval": c.compaction_interval,
                "scan_queue_capacity": c.scan_queue_capacity,
                "result_ring": c.result_ring,
                "follow": c.follow,
                "max_touched_fraction": c.incremental_policy.max_touched_fraction,
                "workers": c.workers,
                "ingest_workers": c.ingest_workers,
                "scan_overrides": [
                    "num_samples", "sample_ratio", "threshold", "path", "engine", "mode",
                    "workers", "scoring",
                ],
            }),
        )
    }

    /// `GET /v1/follow`: the continuous-monitoring view — whether follow
    /// mode is on, which epoch the incremental cache is primed for, how
    /// far ingest has run ahead of it, and the reuse profile of the last
    /// published scan. This is the page an operator watches while
    /// `--follow` is live; `docs/MONITORING.md` explains the fields.
    fn follow_status(&self) -> Response {
        let e = &self.engine;
        let cached_epoch = lock_recover(&e.runner).cached_epoch();
        let latest = e.snapshots.latest();
        let last_scan = e.jobs.latest().map(|r| {
            json!({
                "job_id": r.job_id,
                "epoch": r.epoch,
                "mode": r.reuse.mode(),
                "fallback": r.reuse.fallback.map(|f| f.name()),
                "samples_reused": r.reuse.samples_reused,
                "samples_repeeled": r.reuse.samples_repeeled,
                "dirty_fraction": r.reuse.dirty_fraction(),
                "delta_touched_nodes": r.reuse.delta_touched_nodes,
                "scan_millis": r.scan_millis,
            })
        });
        Response::json(
            200,
            &json!({
                "follow": e.config.follow,
                "snapshot_epoch": latest.epoch,
                "cached_epoch": cached_epoch,
                "ingest_lag": e.snapshots.lag(&e.buffer),
                "max_touched_fraction": e.config.incremental_policy.max_touched_fraction,
                "last_scan": last_scan,
            }),
        )
    }

    fn stats(&self) -> Response {
        let e = &self.engine;
        // Force a fresh snapshot so /stats reflects everything ingested;
        // compaction never holds ingest locks during the graph build.
        let snapshot = e.snapshots.refresh(&e.buffer, true);
        e.metrics.record_snapshot(snapshot.epoch, e.snapshots.lag(&e.buffer));
        let (users, merchants) = (e.interner.num_users(), e.interner.num_merchants());
        let s = GraphStats::of(&snapshot.graph);
        Response::json(
            200,
            &json!({
                "users": users,
                "merchants": merchants,
                "edges": s.num_edges,
                "epoch": snapshot.epoch,
                "avg_user_degree": s.avg_user_degree,
                "avg_merchant_degree": s.avg_merchant_degree,
                "max_merchant_degree": s.max_merchant_degree,
            }),
        )
    }

    /// `POST /v1/transactions`: bulk ingest, negotiated on content type.
    ///
    /// * `application/x-ndjson` — one `["user", "merchant"]` record per
    ///   line, each line parsed directly into its pair (no JSON value
    ///   tree is ever built for the batch).
    /// * `text/csv` — a delimited transaction log, one
    ///   `user,merchant[,amount]` record per line (`#` comments and blank
    ///   lines skipped). Lines are *validated* in parallel chunks
    ///   (`ApiConfig::ingest_workers`) but interned in file order, so ids
    ///   are identical for every worker count. Amounts are validated but
    ///   the monitoring pipeline deduplicates edges binarily — for
    ///   amount-summed weighted detection, use the `ensemfdet ingest`
    ///   CLI's direct-detect path.
    /// * anything else (including no `Content-Type` header) — the
    ///   original `{"records": [[user, merchant], …]}` JSON-array shape.
    ///
    /// All paths validate the whole batch before touching any state, so
    /// a bad batch is rejected whole and ingests nothing.
    fn transactions(&self, request: &Request) -> Response {
        let started = std::time::Instant::now();
        if request.content_type == "text/csv" {
            return self.transactions_csv(&request.body, started);
        }
        let ndjson = request.content_type == "application/x-ndjson";
        let format = if ndjson { "ndjson" } else { "json" };
        let keys = if ndjson {
            parse_ndjson_records(&request.body)
        } else {
            parse_json_records(&request.body)
        };
        self.engine.metrics.record_ingest_parse(format, started.elapsed());
        let keys = match keys {
            Ok(keys) => keys,
            Err(resp) => return resp,
        };

        let e = &self.engine;
        let ids: Vec<_> = keys
            .iter()
            .map(|(u, v)| (e.interner.user(u), e.interner.merchant(v)))
            .collect();
        self.finish_ingest(ids, format, started)
    }

    /// The `text/csv` arm of bulk ingest: chunk-parallel validation, then
    /// sequential file-order interning.
    fn transactions_csv(&self, body: &[u8], started: std::time::Instant) -> Response {
        let e = &self.engine;
        let workers = match e.config.ingest_workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        let parse_started = std::time::Instant::now();
        let pairs = parse_csv_pairs(body, workers);
        e.metrics.record_ingest_parse("csv", parse_started.elapsed());
        let pairs = match pairs {
            Ok(pairs) => pairs,
            Err(resp) => return resp,
        };
        // Interning stays strictly in file order: parallel validation must
        // not perturb id assignment (ids feed sampling downstream).
        let ids: Vec<_> = pairs
            .iter()
            .map(|&(u, v)| (e.interner.user(u), e.interner.merchant(v)))
            .collect();
        self.finish_ingest(ids, "csv", started)
    }

    /// Shared tail of every ingest format: append, count, publish the
    /// load-duration and interner gauges, maybe autoscan.
    fn finish_ingest(
        &self,
        ids: Vec<(ensemfdet_graph::UserId, ensemfdet_graph::MerchantId)>,
        format: &str,
        started: std::time::Instant,
    ) -> Response {
        let e = &self.engine;
        let ingested = ids.len();
        e.buffer.append_batch(ids);
        e.metrics.transactions_ingested.add(ingested as u64);
        e.metrics.record_ingest_load(format, started.elapsed());
        e.metrics.record_interner(
            e.interner.num_users(),
            e.interner.num_merchants(),
            e.interner.arena_bytes(),
        );
        e.since_scan.fetch_add(ingested, Ordering::Relaxed);
        let scan_job = self.maybe_autoscan();
        Response::json(
            200,
            &json!({
                "ingested": ingested,
                "transactions": e.buffer.len(),
                "scan_job": scan_job,
            }),
        )
    }

    /// Fires an automatic scan when a full interval has accumulated past
    /// the warm-up floor. Best-effort: a full queue just means the next
    /// interval tries again.
    fn maybe_autoscan(&self) -> Option<u64> {
        let e = &self.engine;
        if e.since_scan.load(Ordering::Relaxed) < e.config.monitor.scan_interval
            || e.buffer.len() < e.config.monitor.min_transactions
        {
            return None;
        }
        self.enqueue_scan(
            e.config.monitor.detector,
            e.config.monitor.alert_threshold,
            e.config.follow,
            e.config.workers,
        )
        .ok()
        .map(|(id, _epoch)| id)
    }

    /// Effective detector config + threshold + scan mode + worker count
    /// for one scan request: service defaults overlaid with any
    /// per-request overrides from the body (`{}`/`null`/empty body mean
    /// "defaults"). The default mode follows the service: incremental
    /// when follow mode is on, full otherwise; an explicit `"mode"`
    /// override wins either way.
    fn scan_overrides(
        &self,
        body: &[u8],
    ) -> Result<(EnsemFdetConfig, u32, bool, usize), Response> {
        let m = &self.engine.config.monitor;
        let mut config = m.detector;
        let mut threshold = m.alert_threshold;
        let mut incremental = self.engine.config.follow;
        let mut workers = self.engine.config.workers;
        if body.iter().all(u8::is_ascii_whitespace) {
            return Ok((config, threshold, incremental, workers));
        }
        let parsed: Value = serde_json::from_slice(body)
            .map_err(|e| Response::error(400, "bad_request", format!("invalid JSON: {e}")))?;
        if parsed.is_null() {
            return Ok((config, threshold, incremental, workers));
        }
        let obj = parsed.as_object().ok_or_else(|| {
            Response::error(400, "invalid_config", "expected a JSON object of overrides")
        })?;
        for (key, value) in obj.iter() {
            match key.as_str() {
                "num_samples" => {
                    let n = value.as_u64().filter(|&n| (1..=10_000).contains(&n)).ok_or_else(
                        || {
                            Response::error(
                                400,
                                "invalid_config",
                                "num_samples must be an integer in [1, 10000]",
                            )
                        },
                    )?;
                    config.num_samples = n as usize;
                }
                "sample_ratio" => {
                    let r = value
                        .as_f64()
                        .filter(|r| *r > 0.0 && *r <= 1.0)
                        .ok_or_else(|| {
                            Response::error(
                                400,
                                "invalid_config",
                                "sample_ratio must be a number in (0, 1]",
                            )
                        })?;
                    config.sample_ratio = r;
                }
                "threshold" => {
                    let t = value
                        .as_u64()
                        .filter(|&t| t >= 1 && t <= u64::from(u32::MAX))
                        .ok_or_else(|| {
                            Response::error(
                                400,
                                "invalid_config",
                                "threshold must be a positive integer",
                            )
                        })?;
                    threshold = t as u32;
                }
                "path" => {
                    let p = value
                        .as_str()
                        .and_then(|s| s.parse::<SamplePath>().ok())
                        .ok_or_else(|| {
                            Response::error(
                                400,
                                "invalid_config",
                                "path must be \"mask\" or \"materialize\"",
                            )
                        })?;
                    config.path = p;
                }
                "engine" => {
                    let eng = value
                        .as_str()
                        .and_then(|s| s.parse::<PeelEngine>().ok())
                        .ok_or_else(|| {
                            Response::error(
                                400,
                                "invalid_config",
                                "engine must be \"csr\", \"bucket\", \"bucket-batch\", or \"naive\"",
                            )
                        })?;
                    config.engine = eng;
                }
                "mode" => {
                    incremental = match value.as_str() {
                        Some("full") => false,
                        Some("incremental") => true,
                        _ => {
                            return Err(Response::error(
                                400,
                                "invalid_config",
                                "mode must be \"full\" or \"incremental\"",
                            ))
                        }
                    };
                }
                "scoring" => {
                    config.scoring = scoring_override(config.scoring, value)?;
                }
                "workers" => {
                    let w = value
                        .as_u64()
                        .filter(|&w| w <= 256)
                        .ok_or_else(|| {
                            Response::error(
                                400,
                                "invalid_config",
                                "workers must be an integer in [0, 256] (0 = auto)",
                            )
                        })?;
                    workers = w as usize;
                }
                other => {
                    return Err(Response::error(
                        400,
                        "invalid_config",
                        format!("unknown override {other:?} (expected num_samples, sample_ratio, threshold, path, engine, mode, workers, scoring)"),
                    ));
                }
            }
        }
        Ok((config, threshold, incremental, workers))
    }

    /// Pins the freshest snapshot and enqueues a scan job on it.
    fn enqueue_scan(
        &self,
        config: EnsemFdetConfig,
        threshold: u32,
        incremental: bool,
        workers: usize,
    ) -> Result<(u64, u64), Response> {
        let e = &self.engine;
        let snapshot = e.snapshots.refresh(&e.buffer, true);
        let epoch = snapshot.epoch;
        e.metrics.record_snapshot(epoch, e.snapshots.lag(&e.buffer));
        e.since_scan.store(0, Ordering::Relaxed);
        match e.jobs.enqueue(ScanSpec {
            snapshot,
            config,
            threshold,
            incremental,
            workers,
        }) {
            Ok(id) => {
                e.metrics.scan_queue_depth.set(e.jobs.queue_depth() as i64);
                Ok((id, epoch))
            }
            Err(EnqueueError::QueueFull) => {
                e.metrics.scan_queue_rejected.inc();
                Err(Response::error(
                    429,
                    "queue_full",
                    "scan queue full, retry later",
                ))
            }
            Err(EnqueueError::Stopping) => {
                Err(Response::error(503, "internal", "service shutting down"))
            }
        }
    }

    fn submit_scan(&self, body: &[u8]) -> Response {
        let (config, threshold, incremental, workers) = match self.scan_overrides(body) {
            Ok(x) => x,
            Err(resp) => return resp,
        };
        match self.enqueue_scan(config, threshold, incremental, workers) {
            Ok((job_id, epoch)) => Response::json(
                202,
                &json!({
                    "job_id": job_id,
                    "epoch": epoch,
                    "status": JobState::Queued.name(),
                }),
            ),
            Err(resp) => resp,
        }
    }

    /// Deprecated `POST /scan`: enqueue like everyone else, then block
    /// until the job finishes, preserving the old synchronous 200 shape.
    fn scan_sync(&self, body: &[u8]) -> Response {
        let (config, threshold, incremental, workers) = match self.scan_overrides(body) {
            Ok(x) => x,
            Err(resp) => return resp,
        };
        let (id, _epoch) = match self.enqueue_scan(config, threshold, incremental, workers) {
            Ok(x) => x,
            Err(resp) => return resp,
        };
        match self.engine.jobs.wait(id) {
            Some(view) => match view.result {
                Some(r) => Response::json(
                    200,
                    &json!({
                        "transactions": r.transactions,
                        "flagged": r.flagged.clone(),
                        "new_alerts": r.new_alerts.clone(),
                        "scan_millis": r.scan_millis,
                        "epoch": r.epoch,
                    }),
                ),
                None => Response::error(
                    500,
                    "internal",
                    view.error.unwrap_or_else(|| "scan failed".into()),
                ),
            },
            None => Response::error(503, "internal", "service shutting down"),
        }
    }

    fn scan_status(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "bad_request", "scan job ids are decimal integers");
        };
        match self.engine.jobs.lookup(id) {
            JobLookup::Found(view) => Response::json(200, &job_json(&view)),
            JobLookup::Evicted => Response::error(
                410,
                "gone",
                format!("scan job {id} existed but its result aged out of the ring"),
            ),
            JobLookup::Unknown => {
                Response::error(404, "unknown_job", format!("no such scan job: {id}"))
            }
        }
    }

    fn latest_scan(&self) -> Response {
        match self.engine.jobs.latest() {
            Some(r) => Response::json(200, &result_json(&r)),
            None => Response::error(404, "no_completed_scan", "no scan has completed yet"),
        }
    }
}

impl Drop for Api {
    fn drop(&mut self) {
        self.engine.jobs.stop();
        if let Some(executor) = self.executor.take() {
            let _ = executor.join();
        }
    }
}

impl std::fmt::Debug for Api {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Api")
            .field("config", &self.engine.config)
            .field("transactions", &self.engine.buffer.len())
            .finish_non_exhaustive()
    }
}

/// Overlays a `"scoring"` override object onto the service's default
/// scoring configuration. Sending a scoring object implies
/// `enabled: true` unless the object itself carries
/// `"enabled": false`; the merged configuration is validated as a whole
/// (weights finite and not all zero, floors and threshold in `[0, 1]`,
/// at least one spectral component), so a request can never enqueue a
/// scan the scorer would reject.
fn scoring_override(base: ScoringConfig, value: &Value) -> Result<ScoringConfig, Response> {
    let bad = |msg: String| Response::error(400, "invalid_config", msg);
    let obj = value
        .as_object()
        .ok_or_else(|| bad("scoring must be a JSON object of scoring settings".into()))?;
    let mut scoring = base;
    scoring.enabled = true;
    for (key, v) in obj.iter() {
        match key.as_str() {
            "enabled" => {
                scoring.enabled = v
                    .as_bool()
                    .ok_or_else(|| bad("scoring.enabled must be a boolean".into()))?;
            }
            "weights" => {
                let weights = v
                    .as_object()
                    .ok_or_else(|| bad("scoring.weights must be an object".into()))?;
                for (wk, wv) in weights.iter() {
                    let w = wv.as_f64().ok_or_else(|| {
                        bad(format!("scoring.weights.{wk} must be a number"))
                    })?;
                    match wk.as_str() {
                        "vote" => scoring.vote_weight = w,
                        "spectral" => scoring.spectral_weight = w,
                        "kcore" => scoring.kcore_weight = w,
                        other => {
                            return Err(bad(format!(
                                "unknown scoring weight {other:?} (expected vote, spectral, kcore)"
                            )))
                        }
                    }
                }
            }
            "floors" => {
                let floors = v
                    .as_object()
                    .ok_or_else(|| bad("scoring.floors must be an object".into()))?;
                for (fk, fv) in floors.iter() {
                    let f = fv
                        .as_f64()
                        .ok_or_else(|| bad(format!("scoring.floors.{fk} must be a number")))?;
                    match fk.as_str() {
                        "vote" => scoring.vote_floor = f,
                        "spectral" => scoring.spectral_floor = f,
                        "kcore" => scoring.kcore_floor = f,
                        other => {
                            return Err(bad(format!(
                                "unknown scoring floor {other:?} (expected vote, spectral, kcore)"
                            )))
                        }
                    }
                }
            }
            "normalization" => {
                scoring.normalization = v
                    .as_str()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        bad("scoring.normalization must be \"minmax\" or \"rank\"".into())
                    })?;
            }
            "hybrid_threshold" => {
                scoring.hybrid_threshold = v
                    .as_f64()
                    .ok_or_else(|| bad("scoring.hybrid_threshold must be a number".into()))?;
            }
            "components" => {
                let n = v
                    .as_u64()
                    .filter(|&n| (1..=10_000).contains(&n))
                    .ok_or_else(|| {
                        bad("scoring.components must be an integer in [1, 10000]".into())
                    })?;
                scoring.spectral_components = n as usize;
            }
            "seed" => {
                scoring.spectral_seed = v
                    .as_u64()
                    .ok_or_else(|| bad("scoring.seed must be a non-negative integer".into()))?;
            }
            other => {
                return Err(bad(format!(
                    "unknown scoring key {other:?} (expected enabled, weights, floors, \
                     normalization, hybrid_threshold, components, seed)"
                )));
            }
        }
    }
    scoring
        .validate()
        .map_err(|e| bad(format!("invalid scoring: {e}")))?;
    Ok(scoring)
}

/// The wire shape of one job record.
fn job_json(view: &JobView) -> Value {
    let mut body = serde_json::Map::new();
    body.insert("job_id".into(), json!(view.id));
    body.insert("status".into(), json!(view.state.name()));
    body.insert("epoch".into(), json!(view.epoch));
    body.insert(
        "queue_wait_millis".into(),
        json!(view.queue_wait.as_secs_f64() * 1e3),
    );
    if let Some(run) = view.run_time {
        body.insert("run_millis".into(), json!(run.as_secs_f64() * 1e3));
    }
    if let Some(result) = &view.result {
        body.insert("result".into(), result_json(result));
    }
    if let Some(error) = &view.error {
        body.insert(
            "error".into(),
            json!({ "code": "internal", "message": error }),
        );
    }
    Value::Object(body)
}

/// The wire shape of one published scan result.
fn result_json(r: &ScanResultView) -> Value {
    let body = json!({
        "job_id": r.job_id,
        "epoch": r.epoch,
        "transactions": r.transactions,
        "flagged": r.flagged.clone(),
        "new_alerts": r.new_alerts.clone(),
        "scan_millis": r.scan_millis,
        "num_samples": r.config.num_samples,
        "sample_ratio": r.config.sample_ratio,
        "engine": r.config.engine.name(),
        "workers": r.workers,
        "threshold": r.threshold,
        "mode": r.reuse.mode(),
        "fallback": r.reuse.fallback.map(|f| f.name()),
        "samples_reused": r.reuse.samples_reused,
        "samples_repeeled": r.reuse.samples_repeeled,
        "dirty_fraction": r.reuse.dirty_fraction(),
        "delta_touched_nodes": r.reuse.delta_touched_nodes,
    });
    let Value::Object(mut body) = body else {
        unreachable!("json! object literal");
    };
    if let Some(s) = &r.scoring {
        let scoring = json!({
            "weights": {
                "vote": s.config.vote_weight,
                "spectral": s.config.spectral_weight,
                "kcore": s.config.kcore_weight,
            },
            "normalization": s.config.normalization.name(),
            "hybrid_threshold": s.config.hybrid_threshold,
            "hybrid_flagged": s.hybrid_flagged.clone(),
            "component_millis": s.component_millis.to_vec(),
            "account_scores": s.account_scores.iter().map(|(key, [vote, spectral, kcore, hybrid])| {
                json!({
                    "account": key,
                    "vote": vote,
                    "spectral": spectral,
                    "kcore": kcore,
                    "hybrid": hybrid,
                })
            }).collect::<Vec<Value>>(),
        });
        body.insert("scoring".into(), scoring);
    }
    Value::Object(body)
}

/// Parses the legacy JSON-array ingest shape
/// `{"records": [[user, merchant], …]}` into owned key pairs,
/// validating every record up front.
///
/// Public so the bench suite can time the two ingest parsers directly,
/// without socket noise.
pub fn parse_json_records(body: &[u8]) -> Result<Vec<(String, String)>, Response> {
    let parsed: Value = serde_json::from_slice(body)
        .map_err(|e| Response::error(400, "bad_request", format!("invalid JSON: {e}")))?;
    let Some(records) = parsed.get("records").and_then(Value::as_array) else {
        return Err(Response::error(
            400,
            "bad_request",
            "expected {\"records\": [[user, merchant], …]}",
        ));
    };
    let mut keys = Vec::with_capacity(records.len());
    for (i, record) in records.iter().enumerate() {
        let pair = record.as_array().filter(|a| a.len() >= 2);
        let (Some(user), Some(merchant)) = (
            pair.and_then(|a| a[0].as_str()),
            pair.and_then(|a| a[1].as_str()),
        ) else {
            return Err(Response::error(
                400,
                "invalid_record",
                format!("record {i}: expected [user, merchant]"),
            ));
        };
        keys.push((user.to_string(), merchant.to_string()));
    }
    Ok(keys)
}

/// Parses an `application/x-ndjson` ingest body: one
/// `["user", "merchant"]` record per line, blank lines ignored.
///
/// Each line deserializes straight into its string pair — the batch
/// never builds a `serde_json::Value` tree, which is what makes this the
/// bulk path. A bad line fails the whole batch with `400 invalid_record`
/// carrying the 1-based `"line"` number in the error object.
///
/// Public so the bench suite can time the two ingest parsers directly,
/// without socket noise.
pub fn parse_ndjson_records(body: &[u8]) -> Result<Vec<(String, String)>, Response> {
    let mut keys = Vec::new();
    for (i, line) in body.split(|&b| b == b'\n').enumerate() {
        if line.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        let n = i + 1;
        match serde_json::from_slice::<(String, String)>(line) {
            Ok(pair) => keys.push(pair),
            Err(e) => {
                return Err(Response::json(
                    400,
                    &json!({
                        "error": {
                            "code": "invalid_record",
                            "message": format!(
                                "line {n}: expected [\"user\", \"merchant\"]: {e}"
                            ),
                            "line": n,
                        }
                    }),
                ));
            }
        }
    }
    Ok(keys)
}

/// One chunk's validation output for [`parse_csv_pairs`].
struct CsvChunk<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    /// Lines scanned (exact when `error` is `None`).
    lines: usize,
    /// First malformed line: (line offset within the chunk, message).
    error: Option<(usize, String)>,
}

/// Validates one line-aligned chunk of a `text/csv` ingest body. Amounts
/// are validated (the format authority is the graph crate's
/// `parse_csv_record`) but discarded — the monitoring pipeline
/// deduplicates edges binarily.
fn scan_csv_chunk(chunk: &[u8]) -> CsvChunk<'_> {
    let mut pairs = Vec::new();
    let mut lines = 0usize;
    let mut error = None;
    for raw in chunk.split(|&b| b == b'\n') {
        lines += 1;
        let text = match std::str::from_utf8(raw) {
            Ok(t) => t,
            Err(_) => {
                error = Some((lines, "line is not valid UTF-8".to_string()));
                break;
            }
        };
        match parse_csv_record(text, ',') {
            Ok(None) => {}
            Ok(Some((user, merchant, _amount))) => pairs.push((user, merchant)),
            Err(message) => {
                error = Some((lines, message));
                break;
            }
        }
    }
    // The trailing empty piece after a `\n`-terminated chunk is not a line.
    if error.is_none() && chunk.last() == Some(&b'\n') {
        lines -= 1;
    }
    CsvChunk {
        pairs,
        lines,
        error,
    }
}

/// Parses a `text/csv` ingest body: one `user,merchant[,amount]` record
/// per line, `#` comments and blank lines skipped. Chunks are validated
/// in parallel (`workers` line-aligned chunks under `std::thread::scope`)
/// but the returned pairs are in exact file order, so the caller's
/// sequential interning assigns the same ids for every worker count.
///
/// A bad line fails the whole batch with `400 invalid_record` carrying
/// the 1-based `"line"` number in the error object — the same contract
/// as the NDJSON path.
///
/// Public so the bench suite can exercise the CSV ingest parser directly.
pub fn parse_csv_pairs(body: &[u8], workers: usize) -> Result<Vec<(&str, &str)>, Response> {
    let chunks = split_line_chunks(body, workers.max(1));
    let scanned: Vec<CsvChunk<'_>> = if chunks.len() <= 1 {
        chunks.into_iter().map(scan_csv_chunk).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || scan_csv_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("csv parse worker panicked"))
                .collect()
        })
    };
    // Chunks before the first erring one completed cleanly, so their line
    // counts prefix-sum to the global 1-based line number.
    let mut line_base = 0usize;
    for chunk in &scanned {
        if let Some((local_line, message)) = &chunk.error {
            let n = line_base + local_line;
            return Err(Response::json(
                400,
                &json!({
                    "error": {
                        "code": "invalid_record",
                        "message": format!("line {n}: {message}"),
                        "line": n,
                    }
                }),
            ));
        }
        line_base += chunk.lines;
    }
    Ok(scanned.into_iter().flat_map(|c| c.pairs).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn post(api: &Api, path: &str, body: Value) -> (u16, Value) {
        let resp = api.handle(&Request {
            method: "POST".into(),
            path: path.into(),
            content_type: String::new(),
            body: body.to_string().into_bytes(),
        });
        let parsed = serde_json::from_slice(&resp.body).unwrap_or(Value::Null);
        (resp.status, parsed)
    }

    fn post_ndjson(api: &Api, path: &str, body: &str) -> (u16, Value) {
        let resp = api.handle(&Request {
            method: "POST".into(),
            path: path.into(),
            content_type: "application/x-ndjson".into(),
            body: body.as_bytes().to_vec(),
        });
        let parsed = serde_json::from_slice(&resp.body).unwrap_or(Value::Null);
        (resp.status, parsed)
    }

    fn post_csv(api: &Api, path: &str, body: &str) -> (u16, Value) {
        let resp = api.handle(&Request {
            method: "POST".into(),
            path: path.into(),
            content_type: "text/csv".into(),
            body: body.as_bytes().to_vec(),
        });
        let parsed = serde_json::from_slice(&resp.body).unwrap_or(Value::Null);
        (resp.status, parsed)
    }

    fn get(api: &Api, path: &str) -> (u16, Value) {
        let resp = api.handle(&Request {
            method: "GET".into(),
            path: path.into(),
            content_type: String::new(),
            body: vec![],
        });
        let parsed = serde_json::from_slice(&resp.body).unwrap_or(Value::Null);
        (resp.status, parsed)
    }

    /// Polls a job until it reaches a terminal state.
    fn wait_done(api: &Api, job_id: u64) -> Value {
        let start = Instant::now();
        loop {
            let (status, body) = get(api, &format!("/v1/scans/{job_id}"));
            assert_eq!(status, 200, "{body}");
            let state = body["status"].as_str().unwrap().to_string();
            if state == "done" || state == "failed" {
                return body;
            }
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "job {job_id} stuck in {state}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn quick_api() -> Api {
        Api::new(ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 20,
                    sample_ratio: 0.5,
                    seed: 3,
                    ..Default::default()
                },
                scan_interval: 1_000_000,
                alert_threshold: 15,
                min_transactions: 0,
            },
            ..Default::default()
        })
    }

    fn ring_records() -> Vec<Value> {
        // Ring: 8 bots × 6 stores; background: 60 shoppers × 1 purchase.
        let mut records = Vec::new();
        for b in 0..8 {
            for s in 0..6 {
                records.push(json!([format!("bot-{b}"), format!("ring-{s}")]));
            }
        }
        for p in 0..60 {
            records.push(json!([format!("pin-{p}"), format!("store-{}", p % 50)]));
        }
        records
    }

    #[test]
    fn health_reports_counts_on_both_paths() {
        let api = quick_api();
        for path in ["/v1/health", "/health"] {
            let (status, body) = get(&api, path);
            assert_eq!(status, 200);
            assert_eq!(body["status"], "ok");
            assert_eq!(body["transactions"], 0);
            assert_eq!(body["snapshot_epoch"], 0);
        }
    }

    #[test]
    fn ingest_then_async_scan_flags_ring() {
        let api = quick_api();
        let (status, body) = post(&api, "/v1/transactions", json!({ "records": ring_records() }));
        assert_eq!(status, 200);
        assert_eq!(body["ingested"], 108);

        let (status, body) = post(&api, "/v1/scans", json!({}));
        assert_eq!(status, 202, "{body}");
        assert!(body["epoch"].as_u64().unwrap() >= 1);
        let job_id = body["job_id"].as_u64().unwrap();

        let done = wait_done(&api, job_id);
        assert_eq!(done["status"], "done");
        let flagged: Vec<String> = done["result"]["flagged"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        // Detection quality is covered by the core/integration suites; at
        // the service level we check the ring dominates the flag set.
        let bots = flagged.iter().filter(|k| k.starts_with("bot-")).count();
        assert!(bots >= 6, "only {bots}/8 bots flagged: {flagged:?}");
        assert!(
            bots * 2 >= flagged.len(),
            "bots are a minority of the flags: {flagged:?}"
        );

        // The published result is also the latest.
        let (status, latest) = get(&api, "/v1/scans/latest");
        assert_eq!(status, 200);
        assert_eq!(latest["job_id"].as_u64().unwrap(), job_id);
        assert_eq!(latest["epoch"], done["epoch"]);
    }

    #[test]
    fn legacy_scan_alias_stays_synchronous() {
        let api = quick_api();
        post(&api, "/transactions", json!({ "records": ring_records() }));
        let (status, body) = post(&api, "/scan", Value::Null);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body["transactions"], 108);
        let flagged = body["flagged"].as_array().unwrap();
        assert!(
            flagged.iter().any(|v| v.as_str().unwrap().starts_with("bot-")),
            "{body}"
        );
    }

    #[test]
    fn scan_overrides_are_applied_and_validated() {
        let api = quick_api();
        post(&api, "/v1/transactions", json!({ "records": ring_records() }));

        // An impossible threshold flags nobody.
        let (status, body) =
            post(&api, "/v1/scans", json!({ "threshold": 1000, "num_samples": 5 }));
        assert_eq!(status, 202, "{body}");
        let done = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(done["status"], "done");
        assert_eq!(done["result"]["threshold"], 1000);
        assert_eq!(done["result"]["num_samples"], 5);
        assert!(done["result"]["flagged"].as_array().unwrap().is_empty());

        // Both sample paths are accepted and flag the same ring accounts
        // (the mask path is the default; materialize is the reference).
        let mut per_path = Vec::new();
        for path in ["mask", "materialize"] {
            let (status, body) =
                post(&api, "/v1/scans", json!({ "path": path, "num_samples": 5 }));
            assert_eq!(status, 202, "{body}");
            let done = wait_done(&api, body["job_id"].as_u64().unwrap());
            assert_eq!(done["status"], "done", "{done}");
            let mut flagged: Vec<String> = done["result"]["flagged"]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_str().unwrap().to_string())
                .collect();
            flagged.sort();
            per_path.push(flagged);
        }
        assert_eq!(per_path[0], per_path[1], "paths disagree on flagged set");

        // Every peel engine is selectable and flags the same ring (csr and
        // bucket are bit-identical; bucket-batch by the score contract).
        let mut per_engine = Vec::new();
        for engine in ["csr", "bucket", "bucket-batch", "naive"] {
            let (status, body) =
                post(&api, "/v1/scans", json!({ "engine": engine, "num_samples": 5 }));
            assert_eq!(status, 202, "{body}");
            let done = wait_done(&api, body["job_id"].as_u64().unwrap());
            assert_eq!(done["status"], "done", "{done}");
            assert_eq!(done["result"]["engine"], engine, "{done}");
            let mut flagged: Vec<String> = done["result"]["flagged"]
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_str().unwrap().to_string())
                .collect();
            flagged.sort();
            per_engine.push(flagged);
        }
        for other in &per_engine[1..] {
            assert_eq!(per_engine[0], *other, "engines disagree on flagged set");
        }

        // Invalid overrides are 400 invalid_config.
        for bad in [
            json!({ "sample_ratio": 0.0 }),
            json!({ "sample_ratio": 1.5 }),
            json!({ "sample_ratio": "half" }),
            json!({ "num_samples": 0 }),
            json!({ "threshold": -3 }),
            json!({ "path": "mmap" }),
            json!({ "path": 7 }),
            json!({ "engine": "quantum" }),
            json!({ "engine": 7 }),
            json!({ "mode": "turbo" }),
            json!({ "mode": 1 }),
            json!({ "workers": -1 }),
            json!({ "workers": 257 }),
            json!({ "workers": "many" }),
            json!({ "frobnicate": true }),
            json!([1, 2, 3]),
        ] {
            let (status, body) = post(&api, "/v1/scans", bad.clone());
            assert_eq!(status, 400, "override {bad} accepted: {body}");
            assert_eq!(body["error"]["code"], "invalid_config", "{body}");
        }
    }

    /// Sorted flagged keys of a finished job's result.
    fn flagged_of(done: &Value) -> Vec<String> {
        let mut flagged: Vec<String> = done["result"]["flagged"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        flagged.sort();
        flagged
    }

    #[test]
    fn incremental_mode_reuses_and_matches_full() {
        let api = quick_api();
        post(&api, "/v1/transactions", json!({ "records": ring_records() }));

        // Reference full scan.
        let (_, body) = post(&api, "/v1/scans", json!({ "mode": "full" }));
        let full = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(full["result"]["mode"], "full");
        assert!(full["result"]["fallback"].is_null());
        assert_eq!(full["result"]["samples_repeeled"], 20);

        // First incremental request: cache is cold, so it degrades to a
        // full scan (reported honestly) and primes the cache.
        let (_, body) = post(&api, "/v1/scans", json!({ "mode": "incremental" }));
        let cold = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(cold["result"]["mode"], "full", "{cold}");
        assert_eq!(cold["result"]["fallback"], "cold_cache");
        assert_eq!(flagged_of(&cold), flagged_of(&full));

        // Same epoch again: everything replays from the cache.
        let (_, body) = post(&api, "/v1/scans", json!({ "mode": "incremental" }));
        let warm = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(warm["result"]["mode"], "incremental", "{warm}");
        assert_eq!(warm["result"]["samples_reused"], 20);
        assert_eq!(warm["result"]["samples_repeeled"], 0);
        assert_eq!(warm["result"]["dirty_fraction"], 0.0);
        assert_eq!(flagged_of(&warm), flagged_of(&full));

        // A small ingest delta: the incremental scan crosses the epoch
        // and still matches a from-scratch scan of the new epoch.
        post(
            &api,
            "/v1/transactions",
            json!({ "records": [["late-1", "late-shop"], ["late-2", "late-shop"]] }),
        );
        let (_, body) = post(&api, "/v1/scans", json!({ "mode": "incremental" }));
        let inc = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(inc["result"]["mode"], "incremental", "{inc}");
        assert!(inc["result"]["delta_touched_nodes"].as_u64().unwrap() >= 3);
        let (_, body) = post(&api, "/v1/scans", json!({ "mode": "full" }));
        let oracle = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(inc["epoch"], oracle["epoch"], "scans must pin the same epoch");
        assert_eq!(flagged_of(&inc), flagged_of(&oracle));
    }

    #[test]
    fn follow_mode_defaults_to_incremental_and_reports_state() {
        let api = Api::new(ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 8,
                    sample_ratio: 0.5,
                    seed: 3,
                    ..Default::default()
                },
                scan_interval: 1_000_000,
                alert_threshold: 6,
                min_transactions: 0,
            },
            follow: true,
            ..Default::default()
        });
        // Before any activity the follow page reports a cold pipeline.
        let (status, body) = get(&api, "/v1/follow");
        assert_eq!(status, 200);
        assert_eq!(body["follow"], true);
        assert_eq!(body["snapshot_epoch"], 0);
        assert!(body["cached_epoch"].is_null());
        assert!(body["last_scan"].is_null());

        post(&api, "/v1/transactions", json!({ "records": ring_records() }));
        // Default mode in follow mode is incremental; the first scan
        // falls back (cold cache), the second reuses everything.
        let (_, body) = post(&api, "/v1/scans", json!({}));
        let first = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(first["result"]["fallback"], "cold_cache", "{first}");
        let (_, body) = post(&api, "/v1/scans", json!({}));
        let second = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(second["result"]["mode"], "incremental", "{second}");
        assert_eq!(second["result"]["samples_reused"], 8);

        let (status, body) = get(&api, "/v1/follow");
        assert_eq!(status, 200);
        assert_eq!(body["cached_epoch"], 1);
        assert_eq!(body["snapshot_epoch"], 1);
        assert_eq!(body["last_scan"]["mode"], "incremental", "{body}");
        assert_eq!(body["last_scan"]["samples_reused"], 8);
        assert!((body["max_touched_fraction"].as_f64().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn config_page_reports_effective_settings() {
        let api = quick_api();
        let (status, body) = get(&api, "/v1/config");
        assert_eq!(status, 200);
        assert_eq!(body["detector"]["num_samples"], 20);
        assert_eq!(body["alert_threshold"], 15);
        assert_eq!(body["scan_queue_capacity"], 8);
        let overrides = body["scan_overrides"].as_array().unwrap();
        assert_eq!(overrides.len(), 8);
        assert!(overrides.iter().any(|v| v == "path"));
        assert!(overrides.iter().any(|v| v == "engine"));
        assert!(overrides.iter().any(|v| v == "mode"));
        assert!(overrides.iter().any(|v| v == "workers"));
        assert!(overrides.iter().any(|v| v == "scoring"));
        // The detector config (scoring included) is serialized verbatim.
        assert_eq!(body["detector"]["scoring"]["enabled"], false);
        assert_eq!(body["workers"], 0, "default workers is auto (0)");
        assert_eq!(body["ingest_workers"], 0, "default ingest workers is auto (0)");
        assert_eq!(body["follow"], false);
        assert!((body["max_touched_fraction"].as_f64().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn unknown_job_is_404_bad_id_is_400() {
        let api = quick_api();
        let (status, body) = get(&api, "/v1/scans/999");
        assert_eq!(status, 404);
        assert_eq!(body["error"]["code"], "unknown_job");
        let (status, body) = get(&api, "/v1/scans/not-a-number");
        assert_eq!(status, 400);
        assert_eq!(body["error"]["code"], "bad_request");
    }

    #[test]
    fn evicted_job_is_410_gone() {
        // A one-slot result ring: finishing the second scan evicts the
        // first, whose id must then answer `410 gone`, not `404`.
        let api = Api::new(ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 20,
                    sample_ratio: 0.5,
                    seed: 3,
                    ..Default::default()
                },
                scan_interval: 1_000_000,
                alert_threshold: 15,
                min_transactions: 0,
            },
            result_ring: 1,
            ..Default::default()
        });
        post(&api, "/v1/transactions", json!({ "records": ring_records() }));
        let (_, first) = post(&api, "/v1/scans", json!({ "num_samples": 4 }));
        let first_id = first["job_id"].as_u64().unwrap();
        wait_done(&api, first_id);
        let (_, second) = post(&api, "/v1/scans", json!({ "num_samples": 4 }));
        wait_done(&api, second["job_id"].as_u64().unwrap());

        let (status, body) = get(&api, &format!("/v1/scans/{first_id}"));
        assert_eq!(status, 410, "{body}");
        assert_eq!(body["error"]["code"], "gone");
        // Never-issued ids still 404.
        let (status, body) = get(&api, "/v1/scans/424242");
        assert_eq!(status, 404, "{body}");
        assert_eq!(body["error"]["code"], "unknown_job");
    }

    #[test]
    fn stats_reflect_ingested_graph() {
        let api = quick_api();
        post(
            &api,
            "/v1/transactions",
            json!({ "records": [["a", "x"], ["b", "x"], ["a", "y"]] }),
        );
        let (status, body) = get(&api, "/v1/stats");
        assert_eq!(status, 200);
        assert_eq!(body["users"], 2);
        assert_eq!(body["merchants"], 2);
        assert_eq!(body["edges"], 3);
        assert!(body["epoch"].as_u64().unwrap() >= 1);
    }

    #[test]
    fn metrics_page_reflects_activity() {
        let api = quick_api();
        post(
            &api,
            "/v1/transactions",
            json!({ "records": [["a", "x"], ["b", "x"]] }),
        );
        post(&api, "/scan", Value::Null);
        let resp = api.handle(&Request {
            method: "GET".into(),
            path: "/metrics".into(),
            content_type: String::new(),
            body: vec![],
        });
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, PROMETHEUS_CONTENT_TYPE);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("ensemfdet_transactions_ingested_total 2"), "{text}");
        assert!(text.contains("ensemfdet_scans_total 1"), "{text}");
        // The scan fed one per-sample timing observation per sample.
        assert!(text.contains("ensemfdet_scan_sample_duration_seconds_count 20"), "{text}");
        // The pipeline gauges are published.
        assert!(text.contains("ensemfdet_snapshot_epoch 1"), "{text}");
        assert!(text.contains("ensemfdet_scan_job_duration_seconds_count 1"), "{text}");
        // Worker-pool and ingest-parse telemetry. The effective worker
        // count is machine-dependent (0 = auto), so only presence and a
        // non-zero busy-time count are asserted.
        assert!(text.contains("\nensemfdet_scan_workers "), "{text}");
        assert!(!text.contains("ensemfdet_scan_worker_busy_seconds_count 0"), "{text}");
        assert!(
            text.contains("ensemfdet_ingest_parse_duration_seconds_count{content_type=\"json\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn malformed_json_is_400_with_envelope() {
        let api = quick_api();
        let resp = api.handle(&Request {
            method: "POST".into(),
            path: "/v1/transactions".into(),
            content_type: String::new(),
            body: b"not json".to_vec(),
        });
        assert_eq!(resp.status, 400);
        let body: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(body["error"]["code"], "bad_request");
        assert!(body["error"]["message"].as_str().unwrap().contains("invalid JSON"));
    }

    #[test]
    fn bad_record_shape_is_400_and_ingests_nothing() {
        let api = quick_api();
        let (status, body) = post(
            &api,
            "/v1/transactions",
            json!({ "records": [["good", "pair"], ["only-user"]] }),
        );
        assert_eq!(status, 400);
        assert_eq!(body["error"]["code"], "invalid_record");
        assert!(body["error"]["message"].as_str().unwrap().contains("record 1"));
        // The batch was rejected whole.
        let (_, health) = get(&api, "/v1/health");
        assert_eq!(health["transactions"], 0);
    }

    #[test]
    fn ndjson_ingest_accepts_one_record_per_line() {
        let api = quick_api();
        let body = "[\"a\", \"x\"]\n[\"b\", \"x\"]\n\n[\"a\", \"y\"]\n";
        let (status, resp) = post_ndjson(&api, "/v1/transactions", body);
        assert_eq!(status, 200, "{resp}");
        assert_eq!(resp["ingested"], 3);
        assert_eq!(resp["transactions"], 3);
        let (_, stats) = get(&api, "/v1/stats");
        assert_eq!(stats["users"], 2);
        assert_eq!(stats["merchants"], 2);
        assert_eq!(stats["edges"], 3);
    }

    #[test]
    fn ndjson_and_json_array_ingest_build_the_same_graph() {
        let ndjson_api = quick_api();
        let json_api = quick_api();
        let records = ring_records();
        let lines: String = records.iter().map(|r| format!("{r}\n")).collect();
        let (status, _) = post_ndjson(&ndjson_api, "/v1/transactions", &lines);
        assert_eq!(status, 200);
        let (status, _) = post(&json_api, "/v1/transactions", json!({ "records": records }));
        assert_eq!(status, 200);
        let (_, a) = get(&ndjson_api, "/v1/stats");
        let (_, b) = get(&json_api, "/v1/stats");
        assert_eq!(a["users"], b["users"]);
        assert_eq!(a["merchants"], b["merchants"]);
        assert_eq!(a["edges"], b["edges"]);
    }

    #[test]
    fn ndjson_bad_line_is_400_with_line_number_and_ingests_nothing() {
        let api = quick_api();
        let body = "[\"good\", \"pair\"]\n{\"not\": \"a pair\"}\n[\"more\", \"good\"]\n";
        let (status, resp) = post_ndjson(&api, "/v1/transactions", body);
        assert_eq!(status, 400, "{resp}");
        assert_eq!(resp["error"]["code"], "invalid_record");
        assert_eq!(resp["error"]["line"], 2, "{resp}");
        // All-or-nothing: the good lines around the bad one are dropped.
        let (_, health) = get(&api, "/v1/health");
        assert_eq!(health["transactions"], 0);

        // Truncated trailing line (a cut-off upload) also names its line.
        let (status, resp) = post_ndjson(&api, "/v1/transactions", "[\"a\", \"x\"]\n[\"b\", ");
        assert_eq!(status, 400);
        assert_eq!(resp["error"]["line"], 2, "{resp}");
        let (_, health) = get(&api, "/v1/health");
        assert_eq!(health["transactions"], 0);
    }

    #[test]
    fn legacy_transactions_alias_accepts_ndjson_too() {
        let api = quick_api();
        let (status, resp) = post_ndjson(&api, "/transactions", "[\"a\", \"x\"]\n");
        assert_eq!(status, 200, "{resp}");
        assert_eq!(resp["ingested"], 1);
    }

    #[test]
    fn csv_ingest_accepts_transaction_logs() {
        let api = quick_api();
        let body = "# ts omitted\nalice,storeA,12.50\nbob,storeA\n\nalice,storeB,3\n";
        let (status, resp) = post_csv(&api, "/v1/transactions", body);
        assert_eq!(status, 200, "{resp}");
        assert_eq!(resp["ingested"], 3);
        let (_, stats) = get(&api, "/v1/stats");
        assert_eq!(stats["users"], 2);
        assert_eq!(stats["merchants"], 2);
        assert_eq!(stats["edges"], 3);
        // The CSV load fed the format-labelled load histogram and the
        // interner gauges.
        let resp = api.handle(&Request {
            method: "GET".into(),
            path: "/metrics".into(),
            content_type: String::new(),
            body: vec![],
        });
        let text = String::from_utf8(resp.body).unwrap();
        assert!(
            text.contains("ensemfdet_ingest_load_duration_seconds_count{format=\"csv\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ensemfdet_ingest_parse_duration_seconds_count{content_type=\"csv\"} 1"),
            "{text}"
        );
        assert!(text.contains("ensemfdet_interner_keys_total{side=\"user\"} 2"), "{text}");
        assert!(text.contains("ensemfdet_interner_keys_total{side=\"merchant\"} 2"), "{text}");
        assert!(!text.contains("ensemfdet_interner_arena_bytes 0\n"), "{text}");
    }

    #[test]
    fn csv_bad_line_is_400_with_line_number_and_ingests_nothing() {
        let api = quick_api();
        // Fewer than two fields.
        let (status, resp) = post_csv(&api, "/v1/transactions", "a,m\nonly-one-field\nb,m\n");
        assert_eq!(status, 400, "{resp}");
        assert_eq!(resp["error"]["code"], "invalid_record");
        assert_eq!(resp["error"]["line"], 2, "{resp}");
        // Malformed amount.
        let (status, resp) = post_csv(&api, "/v1/transactions", "a,m,1.5\nb,m,lots\n");
        assert_eq!(status, 400, "{resp}");
        assert_eq!(resp["error"]["line"], 2, "{resp}");
        assert!(
            resp["error"]["message"].as_str().unwrap().contains("bad amount"),
            "{resp}"
        );
        // All-or-nothing: nothing was ingested.
        let (_, health) = get(&api, "/v1/health");
        assert_eq!(health["transactions"], 0);
    }

    #[test]
    fn csv_and_json_ingest_build_the_same_graph() {
        let csv_api = quick_api();
        let json_api = quick_api();
        let records = ring_records();
        let csv: String = records
            .iter()
            .map(|r| {
                format!(
                    "{},{},1.0\n",
                    r[0].as_str().unwrap(),
                    r[1].as_str().unwrap()
                )
            })
            .collect();
        let (status, _) = post_csv(&csv_api, "/v1/transactions", &csv);
        assert_eq!(status, 200);
        let (status, _) = post(&json_api, "/v1/transactions", json!({ "records": records }));
        assert_eq!(status, 200);
        let (_, a) = get(&csv_api, "/v1/stats");
        let (_, b) = get(&json_api, "/v1/stats");
        assert_eq!(a["users"], b["users"]);
        assert_eq!(a["merchants"], b["merchants"]);
        assert_eq!(a["edges"], b["edges"]);
    }

    #[test]
    fn csv_ingest_is_worker_invariant() {
        // Same log through 1-worker and 4-worker parsing: identical graph
        // and identical flagged set (ids feed sampling, so this is the
        // service-level determinism gate).
        let csv: String = {
            let mut s = String::new();
            for r in ring_records() {
                s.push_str(&format!(
                    "{},{}\n",
                    r[0].as_str().unwrap(),
                    r[1].as_str().unwrap()
                ));
            }
            s
        };
        let mut flagged_sets = Vec::new();
        for ingest_workers in [1usize, 4] {
            let api = Api::new(ApiConfig {
                monitor: MonitorConfig {
                    detector: EnsemFdetConfig {
                        num_samples: 8,
                        sample_ratio: 0.5,
                        seed: 3,
                        ..Default::default()
                    },
                    scan_interval: 1_000_000,
                    alert_threshold: 6,
                    min_transactions: 0,
                },
                ingest_workers,
                ..Default::default()
            });
            let (status, resp) = post_csv(&api, "/v1/transactions", &csv);
            assert_eq!(status, 200, "{resp}");
            let (_, body) = post(&api, "/v1/scans", json!({}));
            let done = wait_done(&api, body["job_id"].as_u64().unwrap());
            assert_eq!(done["status"], "done", "{done}");
            flagged_sets.push(flagged_of(&done));
        }
        assert_eq!(
            flagged_sets[0], flagged_sets[1],
            "ingest worker count changed detection results"
        );
    }

    #[test]
    fn workers_override_is_echoed_and_result_invariant() {
        let api = quick_api();
        post(&api, "/v1/transactions", json!({ "records": ring_records() }));
        let mut per_workers = Vec::new();
        for workers in [1, 4] {
            let (status, body) =
                post(&api, "/v1/scans", json!({ "workers": workers, "num_samples": 6 }));
            assert_eq!(status, 202, "{body}");
            let done = wait_done(&api, body["job_id"].as_u64().unwrap());
            assert_eq!(done["status"], "done", "{done}");
            assert_eq!(done["result"]["workers"], workers, "{done}");
            per_workers.push(flagged_of(&done));
        }
        assert_eq!(per_workers[0], per_workers[1], "workers changed the flagged set");
        // The latest-result page echoes the worker count too.
        let (_, latest) = get(&api, "/v1/scans/latest");
        assert_eq!(latest["workers"], 4);
    }

    #[test]
    fn scoring_override_runs_hybrid_and_echoes_components() {
        let api = quick_api();
        post(&api, "/v1/transactions", json!({ "records": ring_records() }));
        let (status, body) = post(
            &api,
            "/v1/scans",
            json!({ "scoring": {
                "weights": { "vote": 0.6, "spectral": 0.25, "kcore": 0.15 },
                "normalization": "minmax",
                "hybrid_threshold": 0.65,
                "seed": 7,
            } }),
        );
        assert_eq!(status, 202, "{body}");
        let done = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(done["status"], "done", "{done}");
        let scoring = &done["result"]["scoring"];
        assert!((scoring["weights"]["vote"].as_f64().unwrap() - 0.6).abs() < 1e-12);
        assert!((scoring["weights"]["spectral"].as_f64().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(scoring["normalization"], "minmax");
        assert!((scoring["hybrid_threshold"].as_f64().unwrap() - 0.65).abs() < 1e-12);
        assert_eq!(scoring["component_millis"].as_array().unwrap().len(), 3);
        // The densely-connected bots dominate every component, so the
        // fused score flags them.
        let hybrid: Vec<&str> = scoring["hybrid_flagged"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert!(!hybrid.is_empty(), "{done}");
        assert!(hybrid.iter().all(|k| k.starts_with("bot-")), "{done}");
        // Every echoed account breakdown is a full [0, 1] score vector.
        let accounts = scoring["account_scores"].as_array().unwrap();
        assert!(!accounts.is_empty());
        for entry in accounts {
            for field in ["vote", "spectral", "kcore", "hybrid"] {
                let s = entry[field].as_f64().unwrap();
                assert!((0.0..=1.0).contains(&s), "{entry}");
            }
        }
        // A scan without scoring has no scoring echo.
        let (_, body) = post(&api, "/v1/scans", json!({}));
        let plain = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert!(plain["result"]["scoring"].is_null(), "{plain}");
        // The hybrid scan fed the per-component scoring telemetry.
        let (_, _) = get(&api, "/v1/health");
        let resp = api.handle(&Request {
            method: "GET".into(),
            path: "/metrics".into(),
            content_type: String::new(),
            body: vec![],
        });
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("ensemfdet_scans_hybrid_total 1"), "{text}");
        assert!(
            text.contains(
                "ensemfdet_scan_scoring_duration_seconds_count{component=\"spectral\"} 1"
            ),
            "{text}"
        );
    }

    #[test]
    fn scoring_override_is_validated() {
        let api = quick_api();
        for bad in [
            json!({ "scoring": "hybrid" }),
            json!({ "scoring": { "weights": { "vote": 0.0, "spectral": 0.0, "kcore": 0.0 } } }),
            json!({ "scoring": { "weights": { "vote": -1.0 } } }),
            json!({ "scoring": { "weights": { "velocity": 0.5 } } }),
            json!({ "scoring": { "weights": { "vote": "heavy" } } }),
            json!({ "scoring": { "normalization": "softmax" } }),
            json!({ "scoring": { "hybrid_threshold": 1.5 } }),
            json!({ "scoring": { "hybrid_threshold": -0.1 } }),
            json!({ "scoring": { "floors": { "vote": 2.0 } } }),
            json!({ "scoring": { "floors": { "depth": 0.1 } } }),
            json!({ "scoring": { "components": 0 } }),
            json!({ "scoring": { "seed": -1 } }),
            json!({ "scoring": { "enabled": "yes" } }),
            json!({ "scoring": { "frobnicate": true } }),
        ] {
            let (status, body) = post(&api, "/v1/scans", bad.clone());
            assert_eq!(status, 400, "scoring override {bad} accepted: {body}");
            assert_eq!(body["error"]["code"], "invalid_config", "{body}");
        }
    }

    #[test]
    fn scoring_scans_are_deterministic() {
        let api = quick_api();
        post(&api, "/v1/transactions", json!({ "records": ring_records() }));
        let overrides = json!({ "scoring": { "seed": 42 }, "num_samples": 6 });
        let mut runs = Vec::new();
        for _ in 0..2 {
            let (_, body) = post(&api, "/v1/scans", overrides.clone());
            let done = wait_done(&api, body["job_id"].as_u64().unwrap());
            assert_eq!(done["status"], "done", "{done}");
            runs.push((
                done["result"]["scoring"]["hybrid_flagged"].clone(),
                done["result"]["scoring"]["account_scores"].clone(),
            ));
        }
        assert_eq!(runs[0], runs[1], "same (epoch, seed, weights) must agree exactly");
    }

    #[test]
    fn scoring_config_change_falls_back_to_full_scan() {
        let api = quick_api();
        post(&api, "/v1/transactions", json!({ "records": ring_records() }));
        let hybrid = json!({ "vote": 0.6, "spectral": 0.25, "kcore": 0.15 });
        // Prime the incremental cache under one scoring config.
        let (_, body) = post(
            &api,
            "/v1/scans",
            json!({ "mode": "incremental", "scoring": { "weights": hybrid.clone() } }),
        );
        let cold = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(cold["result"]["fallback"], "cold_cache", "{cold}");
        assert!(!cold["result"]["scoring"].is_null());
        // Same scoring config: the cache replays every sample, and the
        // scoring echo matches the priming scan's exactly.
        let (_, body) = post(
            &api,
            "/v1/scans",
            json!({ "mode": "incremental", "scoring": { "weights": hybrid.clone() } }),
        );
        let warm = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(warm["result"]["mode"], "incremental", "{warm}");
        assert_eq!(warm["result"]["samples_reused"], 20);
        // Identical scoring output (component_millis is wall-clock, so
        // compare the deterministic fields).
        for field in ["weights", "hybrid_flagged", "account_scores"] {
            assert_eq!(
                warm["result"]["scoring"][field], cold["result"]["scoring"][field],
                "cache replay changed scoring {field}"
            );
        }
        // Different scoring weights: the scoring config is part of the
        // incremental cache's key, so reuse is refused — a documented
        // full-scan fallback, not a silent stale-score result.
        let (_, body) = post(
            &api,
            "/v1/scans",
            json!({ "mode": "incremental",
                    "scoring": { "weights": { "vote": 1.0, "spectral": 0.0, "kcore": 0.0 } } }),
        );
        let retuned = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(retuned["result"]["mode"], "full", "{retuned}");
        assert_eq!(retuned["result"]["fallback"], "config_changed", "{retuned}");
        assert!((retuned["result"]["scoring"]["weights"]["vote"].as_f64().unwrap() - 1.0).abs() < 1e-12);
        // Dropping scoring entirely is a config change too.
        let (_, body) = post(&api, "/v1/scans", json!({ "mode": "incremental" }));
        let plain = wait_done(&api, body["job_id"].as_u64().unwrap());
        assert_eq!(plain["result"]["fallback"], "config_changed", "{plain}");
        assert!(plain["result"]["scoring"].is_null(), "{plain}");
    }

    #[test]
    fn unknown_route_is_404_unknown_method_405() {
        let api = quick_api();
        let (status, body) = get(&api, "/nope");
        assert_eq!(status, 404);
        assert_eq!(body["error"]["code"], "not_found");
        let resp = api.handle(&Request {
            method: "DELETE".into(),
            path: "/v1/health".into(),
            content_type: String::new(),
            body: vec![],
        });
        assert_eq!(resp.status, 405);
        let body: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(body["error"]["code"], "method_not_allowed");
    }

    #[test]
    fn latest_scan_before_any_scan_is_404() {
        let api = quick_api();
        let (status, body) = get(&api, "/v1/scans/latest");
        assert_eq!(status, 404);
        assert_eq!(body["error"]["code"], "no_completed_scan");
    }

    #[test]
    fn poisoned_locks_recover_instead_of_wedging() {
        let api = quick_api();
        post(&api, "/v1/transactions", json!({ "records": [["a", "x"]] }));
        // Poison the alert-ledger mutex: panic while holding it. (The
        // interner is no longer a service-level mutex — it recovers from
        // poisoned shard locks internally.)
        let engine = Arc::clone(&api.engine);
        let _ = std::thread::spawn(move || {
            let _runner = lock_recover(&engine.runner);
            panic!("poison the ledger");
        })
        .join();
        assert!(api.engine.runner.is_poisoned());
        // Every path that takes that lock still serves.
        let (status, body) = get(&api, "/v1/health");
        assert_eq!(status, 200, "{body}");
        let (status, body) = post(&api, "/v1/transactions", json!({ "records": [["b", "y"]] }));
        assert_eq!(status, 200, "{body}");
        assert_eq!(body["transactions"], 2);
        let (status, body) = post(&api, "/scan", Value::Null);
        assert_eq!(status, 200, "{body}");
    }

    #[test]
    fn autoscan_fires_on_interval_and_returns_job_id() {
        let api = Api::new(ApiConfig {
            monitor: MonitorConfig {
                detector: EnsemFdetConfig {
                    num_samples: 4,
                    sample_ratio: 0.5,
                    seed: 1,
                    ..Default::default()
                },
                scan_interval: 10,
                alert_threshold: 3,
                min_transactions: 0,
            },
            ..Default::default()
        });
        let records: Vec<Value> =
            (0..12).map(|i| json!([format!("u{i}"), format!("m{}", i % 3)])).collect();
        let (status, body) = post(&api, "/v1/transactions", json!({ "records": records }));
        assert_eq!(status, 200);
        let job = body["scan_job"].as_u64().expect("interval crossed, scan queued");
        let done = wait_done(&api, job);
        assert_eq!(done["status"], "done");
        // The counter reset: a tiny follow-up batch does not re-trigger.
        let (_, body) = post(&api, "/v1/transactions", json!({ "records": [["z", "z"]] }));
        assert!(body["scan_job"].is_null());
    }

    #[test]
    fn route_labels_have_fixed_cardinality() {
        assert_eq!(route_label("GET", "/metrics"), ("/metrics", false));
        assert_eq!(route_label("GET", "/../../etc/passwd"), ("other", false));
        assert_eq!(route_label("POST", "/scan"), ("/v1/scans", true));
        assert_eq!(route_label("POST", "/v1/scans"), ("/v1/scans", false));
        assert_eq!(route_label("GET", "/v1/scans/17"), ("/v1/scans/{id}", false));
        assert_eq!(route_label("GET", "/v1/scans/latest"), ("/v1/scans/latest", false));
        assert_eq!(route_label("GET", "/v1/follow"), ("/v1/follow", false));
        assert_eq!(route_label("GET", "/health"), ("/v1/health", true));
    }
}
