#![warn(missing_docs)]

//! A minimal HTTP façade over the live detection pipeline — the
//! deployment surface the paper alludes to ("ENSEMFDET has been deployed
//! in the risk control department of JD.com").
//!
//! The v1 API (see `docs/API.md` for the full contract):
//!
//! | Method & path            | Body                                   | Effect |
//! |--------------------------|----------------------------------------|--------|
//! | `GET /v1/health`         | —                                      | liveness, transaction count, snapshot epoch |
//! | `POST /v1/transactions`  | `{"records": [["user","merchant"],…]}` | ingest purchases (never blocks on scans) |
//! | `POST /v1/scans`         | optional overrides                     | enqueue an async scan → `202 {job_id, epoch}` |
//! | `GET /v1/scans/{id}`     | —                                      | job status: `queued`/`running`/`done`/`failed` |
//! | `GET /v1/scans/latest`   | —                                      | last published scan result |
//! | `GET /v1/follow`         | —                                      | continuous-monitoring state: cached epoch, ingest lag, last scan's reuse profile |
//! | `GET /v1/stats`          | —                                      | current graph statistics |
//! | `GET /v1/config`         | —                                      | effective service configuration |
//! | `GET /metrics`           | —                                      | Prometheus text metrics |
//!
//! Unversioned paths (`/health`, `/stats`, `/transactions`, `/scan`)
//! remain as deprecated aliases, counted under `deprecated="true"` in the
//! request metrics; `POST /scan` keeps its synchronous contract by
//! waiting on the job it enqueues.
//!
//! **Ingest and scans never contend.** Ingestion appends to a sharded
//! log ([`ensemfdet::pipeline::IngestBuffer`]); scans run on immutable
//! epoch-versioned snapshots compacted from that log
//! ([`ensemfdet::pipeline::SnapshotStore`]) by a single background
//! executor thread draining a bounded job queue ([`jobs::JobStore`]). A
//! scan of any size leaves `POST /v1/transactions` latency untouched,
//! and a job's result is bit-identical for a given (epoch, seed) — in
//! either scan mode: follow mode (`--follow`, [`ApiConfig::follow`])
//! makes scans default to the incremental dirty-sample-reuse path, which
//! replays cached per-sample results the epoch delta provably left
//! unchanged and re-peels only the rest.
//!
//! The HTTP layer is deliberately tiny (hand-rolled HTTP/1.1, no TLS): it
//! exists so the detector can be driven by `curl` and integration-tested
//! over a real socket, not to compete with a production web stack. It is
//! hardened the way a small service still must be:
//!
//! * a fixed pool of [`ServerConfig::workers`] threads drains a bounded
//!   accept queue; overflow is shed with `503` instead of spawning
//!   unbounded threads;
//! * every connection gets read/write deadlines, so stalled clients are
//!   cut off with `408` rather than pinning a worker;
//! * header section and body sizes are capped (`431`/`413`);
//! * every error body is the uniform envelope
//!   `{"error":{"code":…,"message":…}}` with a stable machine code;
//! * [`ServerHandle::shutdown`] stops the accept loop, drains queued
//!   connections, and joins every thread; dropping the [`Api`] stops and
//!   joins the scan executor.
//!
//! All routing logic is a pure function ([`Api::handle`]) from request to
//! response, so the interesting parts are testable without sockets; the
//! shared [`ensemfdet_telemetry::ServiceMetrics`] set behind
//! [`Api::metrics`] is what `GET /metrics` renders.

pub mod api;
mod executor;
pub mod http;
pub mod jobs;
pub mod server;

pub use api::{Api, ApiConfig};
pub use jobs::{JobState, JobStore, JobView, ScanResultView};
pub use server::{Server, ServerConfig, ServerHandle};
