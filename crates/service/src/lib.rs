#![warn(missing_docs)]

//! A minimal HTTP façade over the live campaign monitor — the deployment
//! surface the paper alludes to ("ENSEMFDET has been deployed in the risk
//! control department of JD.com").
//!
//! Endpoints:
//!
//! | Method & path        | Body                                   | Effect |
//! |----------------------|----------------------------------------|--------|
//! | `GET /health`        | —                                      | liveness + transaction count |
//! | `POST /transactions` | `{"records": [["user","merchant"],…]}` | ingest purchases; returns any auto-scan alerts |
//! | `POST /scan`         | —                                      | force a detection pass; returns flagged accounts |
//! | `GET /stats`         | —                                      | current graph statistics |
//! | `GET /metrics`       | —                                      | Prometheus text metrics (requests, queue, scan latencies) |
//!
//! The HTTP layer is deliberately tiny (hand-rolled HTTP/1.1, no TLS): it
//! exists so the detector can be driven by `curl` and integration-tested
//! over a real socket, not to compete with a production web stack. It is
//! hardened the way a small service still must be:
//!
//! * a fixed pool of [`ServerConfig::workers`] threads drains a bounded
//!   accept queue; overflow is shed with `503` instead of spawning
//!   unbounded threads;
//! * every connection gets read/write deadlines, so stalled clients are
//!   cut off with `408` rather than pinning a worker;
//! * header section and body sizes are capped (`431`/`413`);
//! * [`ServerHandle::shutdown`] stops the accept loop, drains queued
//!   connections, and joins every thread.
//!
//! All routing logic is a pure function ([`Api::handle`]) from request to
//! response, so the interesting parts are testable without sockets; the
//! shared [`ensemfdet_telemetry::ServiceMetrics`] set behind
//! [`Api::metrics`] is what `GET /metrics` renders.

pub mod api;
pub mod http;
pub mod server;

pub use api::{Api, ApiConfig};
pub use server::{Server, ServerConfig, ServerHandle};
