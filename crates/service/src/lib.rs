#![warn(missing_docs)]

//! A minimal HTTP façade over the live campaign monitor — the deployment
//! surface the paper alludes to ("ENSEMFDET has been deployed in the risk
//! control department of JD.com").
//!
//! Endpoints (all JSON):
//!
//! | Method & path        | Body                                   | Effect |
//! |----------------------|----------------------------------------|--------|
//! | `GET /health`        | —                                      | liveness + transaction count |
//! | `POST /transactions` | `{"records": [["user","merchant"],…]}` | ingest purchases; returns any auto-scan alerts |
//! | `POST /scan`         | —                                      | force a detection pass; returns flagged accounts |
//! | `GET /stats`         | —                                      | current graph statistics |
//!
//! The HTTP layer is deliberately tiny (hand-rolled HTTP/1.1, one thread
//! per connection, no TLS): it exists so the detector can be driven by
//! `curl` and integration-tested over a real socket, not to compete with a
//! production web stack. All routing logic is a pure function
//! ([`Api::handle`]) from request to response, so the interesting parts
//! are testable without sockets.

pub mod api;
pub mod http;
pub mod server;

pub use api::{Api, ApiConfig};
pub use server::Server;
