//! The background scan executor: one dedicated thread draining the
//! [`JobStore`](crate::jobs::JobStore) queue.
//!
//! Each job carries its pinned snapshot, so the ensemble runs on exactly
//! the epoch that `POST /v1/scans` reported — ingest continuing in the
//! meantime cannot change what a job scans. A panicking detector run is
//! caught and recorded as a `failed` job instead of killing the thread.

use crate::api::{lock_recover, Engine};
use crate::jobs::{ScanResultView, ScoringResultView};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Starts the executor thread. It exits when the job store stops.
pub(crate) fn spawn(engine: Arc<Engine>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("ensemfdet-scan-executor".into())
        .spawn(move || executor_loop(&engine))
        .expect("spawn scan executor")
}

fn executor_loop(engine: &Engine) {
    while let Some((id, spec, queue_wait)) = engine.jobs.next_job() {
        let metrics = &engine.metrics;
        metrics.scan_queue_depth.set(engine.jobs.queue_depth() as i64);
        metrics.scans_in_flight.inc();
        let started = Instant::now();
        // The runner mutex serializes the alert ledger; with a single
        // executor thread it is uncontended. AssertUnwindSafe is sound
        // because a panic can only escape `EnsemFdet::detect`, which runs
        // before the ledger is touched.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut runner = lock_recover(&engine.runner);
            runner.set_workers(spec.workers);
            if spec.incremental {
                runner.run_incremental(
                    &spec.snapshot,
                    &engine.snapshots,
                    &spec.config,
                    spec.threshold,
                    &engine.config.incremental_policy,
                )
            } else {
                runner.run(&spec.snapshot, &spec.config, spec.threshold)
            }
        }));
        match outcome {
            Ok(outcome) => {
                let (flagged, new_alerts, scoring) = {
                    // The concurrent interner is internally synchronized;
                    // key translation takes only shard read locks.
                    let interner = &engine.interner;
                    let to_keys = |ids: &[ensemfdet_graph::UserId]| {
                        ids.iter()
                            .map(|&u| interner.user_key(u))
                            .collect::<Vec<String>>()
                    };
                    let scoring = outcome.scoring.as_ref().map(|s| {
                        // Echo the component breakdown for the union of
                        // vote-flagged and hybrid-flagged accounts.
                        let mut union: Vec<ensemfdet_graph::UserId> = outcome
                            .flagged
                            .iter()
                            .chain(&s.hybrid_flagged)
                            .copied()
                            .collect();
                        union.sort_unstable_by_key(|u| u.0);
                        union.dedup();
                        let mut account_scores: Vec<(String, [f64; 4])> = union
                            .into_iter()
                            .map(|u| {
                                let i = u.index();
                                (
                                    interner.user_key(u),
                                    [s.vote[i], s.spectral[i], s.kcore[i], s.hybrid[i]],
                                )
                            })
                            .collect();
                        account_scores.sort_by(|a, b| a.0.cmp(&b.0));
                        ScoringResultView {
                            config: s.config,
                            hybrid_flagged: to_keys(&s.hybrid_flagged),
                            account_scores,
                            component_millis: s
                                .component_times
                                .map(|t| t.as_secs_f64() * 1e3),
                        }
                    });
                    (to_keys(&outcome.flagged), to_keys(&outcome.new_alerts), scoring)
                };
                metrics.record_scan(outcome.elapsed, &outcome.sample_times);
                metrics.record_scan_workers(outcome.workers, &outcome.worker_times);
                metrics.record_scan_stages([
                    outcome.stages.sampling,
                    outcome.stages.detection,
                    outcome.stages.aggregation,
                ]);
                metrics.record_sampling(outcome.stages.sampling, outcome.sample_bytes);
                metrics.record_scan_reuse(
                    outcome.reuse.incremental,
                    outcome.reuse.fallback.is_some(),
                    outcome.reuse.dirty_fraction(),
                    outcome.reuse.delta_touched_nodes,
                    outcome.elapsed,
                );
                if let Some(s) = &outcome.scoring {
                    metrics.record_scan_scoring(s.component_times);
                }
                metrics.alerts.add(new_alerts.len() as u64);
                metrics.record_snapshot(outcome.epoch, engine.snapshots.lag(&engine.buffer));
                metrics.scans_in_flight.dec();
                metrics.record_scan_job(queue_wait, started.elapsed());
                // Publish last, so every metric update above is visible
                // by the time a synchronous waiter wakes.
                engine.jobs.complete(
                    id,
                    ScanResultView {
                        job_id: id,
                        epoch: outcome.epoch,
                        transactions: outcome.transactions,
                        flagged,
                        new_alerts,
                        config: spec.config,
                        threshold: spec.threshold,
                        scan_millis: outcome.elapsed.as_secs_f64() * 1e3,
                        reuse: outcome.reuse,
                        workers: outcome.workers,
                        scoring,
                    },
                );
            }
            Err(panic) => {
                metrics.scans_failed.inc();
                metrics.scans_in_flight.dec();
                metrics.record_scan_job(queue_wait, started.elapsed());
                engine.jobs.fail(id, format!("scan panicked: {}", panic_message(&panic)));
            }
        }
    }
}

/// Best-effort human-readable payload of a caught panic.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("unknown panic")
}
