#![warn(missing_docs)]

//! Experiment harness reproducing every table and figure of the EnsemFDet
//! paper's evaluation (Section V) on synthetic Table I-scale datasets.
//!
//! One binary per experiment (see `src/bin/`); each prints the paper's
//! rows/series as text tables and writes a JSON artifact under `results/`.
//! The dataset scale is `1/ENSEMFDET_SCALE` of the paper's populations
//! (default 40; set the environment variable or pass `--scale N` to grow
//! or shrink every experiment consistently).
//!
//! Criterion microbenches live in `benches/` and cover the ablations noted
//! in DESIGN.md: heap-based vs naive peeling, sampler throughput, SVD
//! accuracy/cost, metric robustness under camouflage, and end-to-end
//! EnsemFDet vs Fraudar scaling.

pub mod datasets;
pub mod methods;
pub mod output;

/// Default population divisor relative to the paper's Table I.
pub const DEFAULT_SCALE: u32 = 40;

/// Resolves the experiment scale: `--scale N` argument, else the
/// `ENSEMFDET_SCALE` environment variable, else [`DEFAULT_SCALE`].
pub fn resolve_scale(args: &[String]) -> u32 {
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            return v;
        }
    }
    if let Some(v) = std::env::var("ENSEMFDET_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        return v;
    }
    DEFAULT_SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_args_wins() {
        let args: Vec<String> = ["prog", "--scale", "123"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(resolve_scale(&args), 123);
    }

    #[test]
    fn malformed_scale_falls_back() {
        let args: Vec<String> = ["prog", "--scale", "abc"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // Falls through to env/default path.
        let got = resolve_scale(&args);
        assert!(got == DEFAULT_SCALE || got > 0);
    }

    #[test]
    fn default_scale_without_args() {
        // Only deterministic when the env var is unset in the test runner.
        if std::env::var("ENSEMFDET_SCALE").is_err() {
            assert_eq!(resolve_scale(&[]), DEFAULT_SCALE);
        }
    }
}
