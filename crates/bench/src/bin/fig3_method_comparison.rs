//! **Figure 3 (a–c)** — Precision–Recall of SpokEn, FBox, Fraudar and
//! EnsemFDet on all three datasets.
//!
//! Expected shape (paper): EnsemFDet and Fraudar close together at the top;
//! the SVD methods unstable across datasets (FBox nearly invalid on
//! Dataset #1); EnsemFDet's curve smooth, Fraudar's a coarse polyline.

use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_eval::{PrCurve, Table};
use serde::Serialize;

#[derive(Serialize)]
struct MethodResult {
    method: String,
    best_f1: f64,
    auc_pr: f64,
    points: Vec<ensemfdet_eval::PrPoint>,
}

#[derive(Serialize)]
struct DatasetResult {
    dataset: String,
    methods: Vec<MethodResult>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!("== Figure 3: method comparison on all datasets (1/{scale}) ==");

    let mut all = Vec::new();
    for (which, ds) in datasets::load_all(scale) {
        let labels = ds.labels();
        println!(
            "\n-- {} ({} users, {} edges, {} blacklisted) --",
            which.name(),
            ds.graph.num_users(),
            ds.graph.num_edges(),
            ds.blacklist.len()
        );

        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: 80,
                sample_ratio: 0.1,
                seed: 0xF163,
                ..Default::default()
            },
        );
        let curves: Vec<(&str, PrCurve)> = vec![
            ("SPOKEN", methods::spoken_curve(&ds.graph, &labels)),
            ("FBox", methods::fbox_curve(&ds.graph, &labels)),
            ("FRAUDAR", methods::fraudar_curve(&ds.graph, &labels, 30)),
            ("EnsemFDet", methods::ensemfdet_curve(&outcome, &labels)),
        ];

        let mut table = Table::new(&["method", "points", "best F1", "P@bestF1", "R@bestF1", "AUC-PR"]);
        let mut methods_out = Vec::new();
        for (name, curve) in curves {
            let best = curve.best_point().cloned();
            table.row(&[
                name.to_string(),
                curve.points.len().to_string(),
                format!("{:.3}", curve.best_f1()),
                best.map(|b| format!("{:.3}", b.precision)).unwrap_or_default(),
                curve
                    .best_point()
                    .map(|b| format!("{:.3}", b.recall))
                    .unwrap_or_default(),
                format!("{:.3}", curve.auc_pr()),
            ]);
            methods_out.push(MethodResult {
                method: name.to_string(),
                best_f1: curve.best_f1(),
                auc_pr: curve.auc_pr(),
                points: curve.points,
            });
        }
        println!("{}", table.render());
        all.push(DatasetResult {
            dataset: which.name().to_string(),
            methods: methods_out,
        });
    }

    println!(
        "(paper shape: EnsemFDet ≈ Fraudar on every dataset; SVD methods\n\
         unstable — FBox nearly invalid on Dataset #1; EnsemFDet sweeps a\n\
         smooth curve where Fraudar gives a handful of diamond points)"
    );
    output::save("fig3_method_comparison", &all);
}
