//! `bench_suite` — the reproducible benchmarks behind `BENCH_PR2.json`
//! (csr vs naive peeling engines), `BENCH_PR4.json` (sampling data
//! paths), `BENCH_PR6.json` (bucket-queue peel engines), `BENCH_PR7.json`
//! (incremental vs full scans under sustained ingest), `BENCH_PR8.json`
//! (the full-JD-scale sharded build + parallel ensemble),
//! `BENCH_PR9.json` (single methods vs the calibrated hybrid scorer
//! under camouflage), and `BENCH_PR10.json` (arena/sharded interners +
//! the chunked weighted CSV loader).
//!
//! **Engine phase** times the two peeling engines (`csr`, the default hot
//! path, vs `naive`, the reference implementation) on fixed-seed
//! workloads:
//!
//! * `peel` — one densest-block extraction (`Truncation::FixedK(1)`),
//! * `fdet` — a full FDET pass with the default auto-truncation,
//! * `ensemble_s0.01` / `ensemble_s0.10` — the end-to-end ensemble at the
//!   paper's two operating ratios (`N = 20` samples each).
//!
//! **Sampling phase** compares the two sampling data paths —
//! `materialize` (every sample built as a compacted `BipartiteGraph`,
//! the reference) vs `mask` (sample specs resolved lazily against the
//! shared parent CSR, the default) — on two workload families per ratio:
//!
//! * `ensemble_s*` — the end-to-end ensemble scan. Peeling dominates
//!   here and is bit-identical across paths, so this ratio is an
//!   Amdahl-diluted view of the data-path change;
//! * `sampling_s*` — the per-sample draw→ready-`CsrView` data path in
//!   isolation (the ensemble's exact seed schedule, `N` samples per
//!   rep), which is the cost this refactor actually changes.
//!
//! Both families record the bytes of per-sample state each path
//! materializes.
//!
//! **Peel-engine phase** times the bucket-queue peel engines against the
//! CSR hot path on the `peel` and `fdet` workloads, three engines
//! interleaved back-to-back within every rep: `csr` (binary lazy heap),
//! `bucket` (monotone bucket queue, bit-identical to csr), and
//! `bucket-batch` (tie rounds removed whole, relaxed in parallel). Its
//! gate checks the bucket engine bit-identical against csr on the full
//! `KeepAll` curve, and the batched engine against the documented
//! score-equality contract (leading-block scores within 1e-9 relative,
//! same auto-truncation `k̂` with score-equal retained blocks).
//!
//! **Incremental phase** replays a ramping fraud campaign
//! (`ensemfdet_datagen::ramp_timeline`: one base batch registering every
//! account, then fraud-ring edges arriving over several epochs) through
//! the snapshot pipeline and scans every epoch twice — a from-scratch
//! full scan vs `ScanRunner::run_incremental`'s dirty-sample reuse — with
//! the two chains interleaved within every rep. Its gate checks the two
//! modes bit-identical (votes and flagged sets) on every epoch before any
//! timing. Per-epoch latency is recorded honestly: the first incremental
//! epoch is the cold-cache fallback (a full scan plus cache priming) and
//! is reported as such, and each epoch's row carries the delta footprint
//! and reuse counts the speedup depends on.
//!
//! Every workload runs on the small (#1) and large (#3) Table I presets.
//! Before any timing, an **equivalence gate** re-runs each workload through
//! both engines (and both sampling paths, across all four sampling
//! methods) and aborts (exit 1) unless they produce bit-identical
//! blocks, scores, and ensemble votes — a timing comparison between
//! non-equivalent implementations would be meaningless.
//!
//! **Full-scale phase** runs on jd3 at `1/4` of Table I (≈1.08M users,
//! ≈2.0M edges — ten times the default suite scale) regardless of
//! `--scale`, and times the three parallel paths this repo grew for that
//! size against their sequential baselines, each pair gated bit-identical
//! first: the sharded CSR build vs the sequential counting sort, the
//! worker-pool ensemble (`workers = N`) vs the single-worker drain, the
//! mask vs materialize sample paths under the pool (per-sample subgraph
//! materialization contends on the allocator across threads; masks over
//! the shared parent CSR don't), and the NDJSON ingest parser vs the
//! legacy JSON-array parser on the same records. The speedups are
//! *measured*, not ideal-parallel projections —
//! on a single-core machine the parallel variants land near (or below)
//! 1×, and that is the number recorded.
//!
//! **Hybrid-scoring phase** sweeps the camouflage ablation against the
//! unified detector registry: at each camouflage level (0/2/6/12
//! purchases per fraud user on dataset #1) it scores the graph with every
//! single method — the ensemble's vote sweep plus all six baselines
//! behind the `Detector` trait — and with the calibrated hybrid
//! (vote + spectral + k-core fusion, weights and normalization fitted
//! per level — a 66-point simplex grid under each normalization). Its gate first checks every detector adapter
//! rank-identical to its bespoke entry point and every degenerate fusion
//! corner reproducing its component's ranking; afterwards the suite
//! asserts the hybrid's best F1 at-or-above every single method at every
//! level and exits 1 on any violation.
//!
//! **Parallel bulk-ingest phase** renders the full-scale phase's jd3
//! graph as a `user,merchant,amount` CSV transaction log
//! (`ensemfdet_datagen::translog`) and times, behind a byte-counting
//! global allocator: the legacy twin-map `TransactionInterner` vs the
//! contiguous arena vs the sharded arena (single-threaded and across the
//! worker pool) on the log's pre-parsed key pairs, and the chunked
//! weighted loader end to end at 1..N workers. Its gate first checks
//! every worker count bit-identical to the serial scan — assigned ids,
//! edge arrays, amount-summed weights as f64 bits, and the ensemble
//! votes of the loaded graph — and the sharded interner id-identical to
//! the serial arena. Speedups are measured, not projected: on a
//! single-core box the parallel loader lands near (or below) 1×, and
//! that is the number recorded.
//!
//! `--smoke` additionally drives the HTTP service's v1 surface over a real
//! socket (JSON-array, NDJSON, and `text/csv` ingest — each with its
//! per-line error contract — → async scan jobs, one with a
//! `workers` override, one with a `scoring` override → results) and
//! aborts if any step misbehaves, so CI catches service regressions
//! without a separate harness.
//!
//! Timing protocol: `--warmup` unmeasured iterations, then `--reps`
//! measured ones with the two engines interleaved back-to-back within
//! every rep. The JSON artifact records the median and p95 wall time of
//! each (workload, dataset, engine) cell; the per-cell CSR speedup is the
//! median of the per-rep `naive / csr` ratios, which cancels slow
//! background load drift on shared machines.
//!
//! ```text
//! cargo run --release -p ensemfdet-bench --bin bench_suite            # full
//! cargo run --release -p ensemfdet-bench --bin bench_suite -- --smoke # CI
//! ```
//!
//! `--out FILE` (default `BENCH_PR2.json`) picks the engine artifact
//! path, `--out-sampling FILE` (default `BENCH_PR4.json`) the sampling
//! one, `--out-peel FILE` (default `BENCH_PR6.json`) the peel-engine
//! one, `--out-incremental FILE` (default `BENCH_PR7.json`) the
//! incremental-scan one, `--out-scale FILE` (default `BENCH_PR8.json`)
//! the full-scale one, `--out-hybrid FILE` (default `BENCH_PR9.json`)
//! the hybrid-scoring one, `--out-ingest FILE` (default
//! `BENCH_PR10.json`) the parallel-ingest one; `--scale N` resizes the
//! datasets as in every other experiment binary (the full-scale phase
//! pins its own divisor).
//! Absolute numbers are machine-dependent; the speedup ratios are the
//! portable signal.

use ensemfdet::pipeline::{IngestBuffer, ScanRunner, SnapshotStore};
use ensemfdet::{
    fdet_with_engine, kcore_scores, normalize_scores, spectral_scores, DetectContext, Detector,
    Engine, EnsemFdet, EnsemFdetConfig, HybridScorer, IncrementalPolicy, MetricKind, ReuseStats,
    SamplePath, SamplingMethodConfig, ScoreNormalization, ScoringConfig, Truncation,
};
use ensemfdet_baselines::{
    standard_detectors, DegreeBaseline, FBox, Fraudar, Hits, KCoreBaseline, Spoken,
};
use ensemfdet_bench::{datasets, methods, resolve_scale};
use ensemfdet_datagen::generate;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{ramp_timeline, transaction_log_string, TransactionLogConfig};
use ensemfdet_graph::loader::parse_csv_record;
use ensemfdet_graph::{
    load_transactions, ArenaTransactionInterner, BipartiteGraph, ConcurrentTransactionInterner,
    CsrView, LoadOptions, MerchantId, SampleMaps, SampleSpec, SpecResolver, TransactionInterner,
    UserId,
};
use ensemfdet_sampling::{seed, Sampler, SamplerScratch, SamplingMethod};
use ensemfdet_service::api::{parse_json_records, parse_ndjson_records};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Byte-counting allocator wrapper: the ingest phase reports
/// bytes-allocated per interner variant alongside wall time, since the
/// arena refactor's whole point is collapsing per-key allocations. Two
/// relaxed atomic adds per allocation — negligible against the work the
/// other phases time, and every variant pays it equally.
struct CountingAlloc;

static ALLOC_BYTES: AtomicUsize = AtomicUsize::new(0);
static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f`, returning `(allocation calls, bytes requested, result)`.
fn counted_alloc<R>(f: impl FnOnce() -> R) -> (usize, usize, R) {
    let calls0 = ALLOC_CALLS.load(Ordering::SeqCst);
    let bytes0 = ALLOC_BYTES.load(Ordering::SeqCst);
    let out = f();
    (
        ALLOC_CALLS.load(Ordering::SeqCst) - calls0,
        ALLOC_BYTES.load(Ordering::SeqCst) - bytes0,
        out,
    )
}

const ENSEMBLE_SAMPLES: usize = 20;
const ENSEMBLE_SEED: u64 = 0x7AB3;

#[derive(Clone, Copy)]
struct Workload {
    name: &'static str,
    kind: WorkloadKind,
}

#[derive(Clone, Copy)]
enum WorkloadKind {
    /// One peel: FDET truncated to a single block.
    Peel,
    /// Full FDET with the default auto-truncation.
    Fdet,
    /// End-to-end ensemble at this sample ratio.
    Ensemble(f64),
}

const WORKLOADS: [Workload; 4] = [
    Workload { name: "peel", kind: WorkloadKind::Peel },
    Workload { name: "fdet", kind: WorkloadKind::Fdet },
    Workload { name: "ensemble_s0.01", kind: WorkloadKind::Ensemble(0.01) },
    Workload { name: "ensemble_s0.10", kind: WorkloadKind::Ensemble(0.1) },
];

#[derive(Serialize)]
struct Cell {
    workload: &'static str,
    dataset: &'static str,
    engine: &'static str,
    reps: usize,
    median_s: f64,
    p95_s: f64,
    min_s: f64,
}

#[derive(Serialize)]
struct Speedup {
    workload: &'static str,
    dataset: &'static str,
    /// Median of the per-rep `naive / csr` wall-time ratios (the engines
    /// run back-to-back within each rep) — above 1 means CSR is faster.
    csr_over_naive: f64,
}

#[derive(Serialize)]
struct Artifact {
    schema: &'static str,
    smoke: bool,
    scale: u32,
    warmup: usize,
    reps: usize,
    ensemble_samples: usize,
    equivalence: &'static str,
    /// `"ok"` when `--smoke` drove the v1 HTTP surface end-to-end,
    /// `"skipped"` on full (non-smoke) runs.
    service_smoke: &'static str,
    datasets: Vec<DatasetInfo>,
    cells: Vec<Cell>,
    speedups: Vec<Speedup>,
}

#[derive(Clone, Serialize)]
struct DatasetInfo {
    name: &'static str,
    users: usize,
    merchants: usize,
    edges: usize,
}

fn dataset_tag(which: JdDataset) -> &'static str {
    match which {
        JdDataset::Jd1 => "jd1",
        JdDataset::Jd2 => "jd2",
        JdDataset::Jd3 => "jd3",
    }
}

fn run_workload(w: WorkloadKind, g: &BipartiteGraph, engine: Engine) {
    match w {
        WorkloadKind::Peel => {
            let r = fdet_with_engine(g, &MetricKind::default(), Truncation::FixedK(1), engine);
            std::hint::black_box(r.blocks.len());
        }
        WorkloadKind::Fdet => {
            let r = fdet_with_engine(g, &MetricKind::default(), Truncation::default(), engine);
            std::hint::black_box(r.k_hat);
        }
        WorkloadKind::Ensemble(ratio) => {
            let outcome = EnsemFdet::new(EnsemFdetConfig {
                num_samples: ENSEMBLE_SAMPLES,
                sample_ratio: ratio,
                engine,
                seed: ENSEMBLE_SEED,
                ..Default::default()
            })
            .detect(g);
            std::hint::black_box(outcome.votes.max_user_votes());
        }
    }
}

/// `warmup` unmeasured alternating runs, then `reps` measured wall times
/// per engine, interleaved naive/csr within every rep.
///
/// Interleaving matters on shared machines: background load drifts on a
/// seconds scale, so timing one engine's reps in a block and then the
/// other's would fold that drift into the comparison. Back-to-back pairs
/// see near-identical machine state, and the per-pair ratio cancels it.
fn time_workload_pair(
    w: WorkloadKind,
    g: &BipartiteGraph,
    warmup: usize,
    reps: usize,
) -> (Vec<f64>, Vec<f64>) {
    for _ in 0..warmup {
        run_workload(w, g, Engine::Naive);
        run_workload(w, g, Engine::Csr);
    }
    let mut naive = Vec::with_capacity(reps);
    let mut csr = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        run_workload(w, g, Engine::Naive);
        naive.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        run_workload(w, g, Engine::Csr);
        csr.push(t.elapsed().as_secs_f64());
    }
    (naive, csr)
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

// ---------------------------------------------------------------------------
// Sampling-path phase (BENCH_PR4.json)
// ---------------------------------------------------------------------------

/// The ensemble ratios timed in the sampling phase — the paper's two
/// operating points.
const SAMPLING_RATIOS: [f64; 2] = [0.01, 0.1];

#[derive(Serialize)]
struct PathCell {
    workload: String,
    dataset: &'static str,
    path: &'static str,
    reps: usize,
    median_s: f64,
    p95_s: f64,
    min_s: f64,
    /// Bytes of per-sample state one ensemble pass materializes on this
    /// path (selection vectors vs full subgraph buffers + intern maps).
    sample_bytes: u64,
}

#[derive(Serialize)]
struct PathSpeedup {
    workload: String,
    dataset: &'static str,
    /// Median of the per-rep `materialize / mask` wall-time ratios —
    /// above 1 means the mask path is faster.
    mask_over_materialize: f64,
    /// `materialize_bytes / mask_bytes` — the allocation-footprint gap.
    bytes_ratio: f64,
}

#[derive(Serialize)]
struct SamplingArtifact {
    schema: &'static str,
    smoke: bool,
    scale: u32,
    warmup: usize,
    reps: usize,
    ensemble_samples: usize,
    equivalence: &'static str,
    datasets: Vec<DatasetInfo>,
    cells: Vec<PathCell>,
    speedups: Vec<PathSpeedup>,
}

fn path_config(ratio: f64, path: SamplePath, method: SamplingMethodConfig) -> EnsemFdetConfig {
    EnsemFdetConfig {
        num_samples: ENSEMBLE_SAMPLES,
        sample_ratio: ratio,
        engine: Engine::Csr,
        path,
        method,
        seed: ENSEMBLE_SEED,
        ..Default::default()
    }
}

/// One timed ensemble pass on `path`; returns the bytes it materialized.
fn run_path_workload(ratio: f64, g: &BipartiteGraph, path: SamplePath) -> u64 {
    let outcome = EnsemFdet::new(path_config(ratio, path, SamplingMethodConfig::RandomEdge))
        .detect(g);
    std::hint::black_box(outcome.votes.max_user_votes());
    outcome.sample_bytes()
}

/// One timed pass over the ensemble's *sampling data path* — the part of
/// the scan this refactor changes: per sample, draw the sample and build
/// the ready-to-peel `CsrView`, with the ensemble's exact seed schedule.
/// The peel itself (bit-identical across paths, and the dominant cost at
/// `S = 0.1`) is deliberately excluded, so this isolates the
/// draw→ready-view cost the two paths actually differ on.
fn run_data_path_workload(
    ratio: f64,
    g: &BipartiteGraph,
    path: SamplePath,
    state: &mut DataPathState,
) {
    for i in 0..ENSEMBLE_SAMPLES as u64 {
        let sample_seed = seed::derive(ENSEMBLE_SEED, i);
        match path {
            SamplePath::Materialize => {
                let sampled = SamplingMethod::RandomEdge.sample(g, ratio, sample_seed);
                state.view.rebuild(&sampled.graph, None);
            }
            SamplePath::Mask => {
                SamplingMethod::RandomEdge.sample_spec(
                    g,
                    ratio,
                    sample_seed,
                    &mut state.scratch,
                    &mut state.spec,
                );
                state
                    .view
                    .rebuild_from_spec(g, &state.spec, &mut state.resolver, &mut state.maps);
            }
        }
        std::hint::black_box(state.view.num_edges());
    }
}

/// Reusable buffers for [`run_data_path_workload`], mirroring the
/// per-thread scratch the ensemble holds.
#[derive(Default)]
struct DataPathState {
    view: CsrView,
    scratch: SamplerScratch,
    spec: SampleSpec,
    resolver: SpecResolver,
    maps: SampleMaps,
}

/// `warmup` unmeasured alternating passes, then `reps` measured wall
/// times per path, interleaved within every rep.
fn time_data_path_pair(
    ratio: f64,
    g: &BipartiteGraph,
    warmup: usize,
    reps: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut state = DataPathState::default();
    for _ in 0..warmup {
        run_data_path_workload(ratio, g, SamplePath::Materialize, &mut state);
        run_data_path_workload(ratio, g, SamplePath::Mask, &mut state);
    }
    let mut materialize = Vec::with_capacity(reps);
    let mut mask = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        run_data_path_workload(ratio, g, SamplePath::Materialize, &mut state);
        materialize.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        run_data_path_workload(ratio, g, SamplePath::Mask, &mut state);
        mask.push(t.elapsed().as_secs_f64());
    }
    (materialize, mask)
}

/// Both sampling paths must agree exactly — votes, evidence, per-sample
/// blocks and scores — across all four sampling methods before we time
/// them.
fn sampling_equivalence_gate(g: &BipartiteGraph) -> Result<(), String> {
    for method in [
        SamplingMethodConfig::RandomEdge,
        SamplingMethodConfig::OneSideUser,
        SamplingMethodConfig::OneSideMerchant,
        SamplingMethodConfig::TwoSide,
    ] {
        let run = |path| EnsemFdet::new(path_config(0.3, path, method)).detect(g);
        let (mask, mat) = (run(SamplePath::Mask), run(SamplePath::Materialize));
        if mask.votes != mat.votes {
            return Err(format!("{method:?}: ensemble votes differ between paths"));
        }
        if mask.evidence.user_evidence != mat.evidence.user_evidence {
            return Err(format!("{method:?}: evidence differs between paths"));
        }
        for (a, b) in mask.samples.iter().zip(&mat.samples) {
            if a.scores != b.scores
                || a.sample_nodes != b.sample_nodes
                || a.sample_edges != b.sample_edges
                || a.k_hat != b.k_hat
            {
                return Err(format!(
                    "{method:?}: sample #{} diagnostics differ between paths",
                    a.index
                ));
            }
        }
    }
    Ok(())
}

/// `warmup` unmeasured alternating runs, then `reps` measured wall times
/// per path, interleaved materialize/mask within every rep (same drift
/// rationale as [`time_workload_pair`]).
fn time_sampling_pair(
    ratio: f64,
    g: &BipartiteGraph,
    warmup: usize,
    reps: usize,
) -> (Vec<f64>, Vec<f64>, [u64; 2]) {
    for _ in 0..warmup {
        run_path_workload(ratio, g, SamplePath::Materialize);
        run_path_workload(ratio, g, SamplePath::Mask);
    }
    let mut materialize = Vec::with_capacity(reps);
    let mut mask = Vec::with_capacity(reps);
    let mut bytes = [0u64; 2];
    for _ in 0..reps {
        let t = Instant::now();
        bytes[0] = run_path_workload(ratio, g, SamplePath::Materialize);
        materialize.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        bytes[1] = run_path_workload(ratio, g, SamplePath::Mask);
        mask.push(t.elapsed().as_secs_f64());
    }
    (materialize, mask, bytes)
}

// ---------------------------------------------------------------------------
// Peel-engine phase (BENCH_PR6.json)
// ---------------------------------------------------------------------------

/// The engines timed in the peel-engine phase: the incumbent CSR hot path
/// and its two bucket-queue challengers.
const PEEL_ENGINES: [Engine; 3] = [Engine::Csr, Engine::Bucket, Engine::BucketBatch];

#[derive(Serialize)]
struct PeelSpeedup {
    workload: &'static str,
    dataset: &'static str,
    /// Median per-rep `csr / bucket` wall-time ratio — above 1 means the
    /// sequential bucket queue is faster.
    bucket_over_csr: f64,
    /// Median per-rep `csr / bucket-batch` ratio.
    bucket_batch_over_csr: f64,
}

#[derive(Serialize)]
struct PeelArtifact {
    schema: &'static str,
    smoke: bool,
    scale: u32,
    warmup: usize,
    reps: usize,
    /// `"bit-identical"` for `bucket`, `"score-equality"` for
    /// `bucket-batch` — the two gates [`peel_engine_gate`] enforced.
    equivalence: &'static str,
    datasets: Vec<DatasetInfo>,
    cells: Vec<Cell>,
    speedups: Vec<PeelSpeedup>,
}

/// The bucket engine must be bit-identical to csr on the full `KeepAll`
/// curve; the batched engine must satisfy the score-equality contract
/// (leading-block score within 1e-9 relative; same auto-truncation `k̂`
/// with score-equal retained blocks).
fn peel_engine_gate(g: &BipartiteGraph) -> Result<(), String> {
    let keep = |e| fdet_with_engine(g, &MetricKind::default(), Truncation::KeepAll { k_max: 50 }, e);
    let (csr, bucket) = (keep(Engine::Csr), keep(Engine::Bucket));
    if bucket.blocks != csr.blocks {
        return Err("bucket FDET blocks differ from csr".into());
    }
    if bucket.scores != csr.scores {
        return Err("bucket FDET scores differ from csr".into());
    }

    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(1.0);
    let batch = keep(Engine::BucketBatch);
    if batch.scores.is_empty() != csr.scores.is_empty() {
        return Err("bucket-batch peeled a different number of leading blocks".into());
    }
    if let (Some(&a), Some(&b)) = (csr.scores.first(), batch.scores.first()) {
        if !close(a, b) {
            return Err(format!("bucket-batch leading block score {b} vs csr {a}"));
        }
    }
    let auto = |e| fdet_with_engine(g, &MetricKind::default(), Truncation::default(), e);
    let (csr_auto, batch_auto) = (auto(Engine::Csr), auto(Engine::BucketBatch));
    if batch_auto.k_hat != csr_auto.k_hat {
        return Err(format!(
            "bucket-batch k_hat {} vs csr {}",
            batch_auto.k_hat, csr_auto.k_hat
        ));
    }
    for i in 0..csr_auto.k_hat {
        if !close(csr_auto.scores[i], batch_auto.scores[i]) {
            return Err(format!(
                "bucket-batch retained score {i}: {} vs csr {}",
                batch_auto.scores[i], csr_auto.scores[i]
            ));
        }
    }
    Ok(())
}

/// `warmup` unmeasured alternating runs, then `reps` measured wall times
/// per engine, the three engines interleaved back-to-back within every
/// rep (same drift rationale as [`time_workload_pair`]).
fn time_engine_trio(
    w: WorkloadKind,
    g: &BipartiteGraph,
    warmup: usize,
    reps: usize,
) -> [Vec<f64>; 3] {
    for _ in 0..warmup {
        for e in PEEL_ENGINES {
            run_workload(w, g, e);
        }
    }
    let mut times = [Vec::new(), Vec::new(), Vec::new()];
    for _ in 0..reps {
        for (slot, e) in PEEL_ENGINES.into_iter().enumerate() {
            let t = Instant::now();
            run_workload(w, g, e);
            times[slot].push(t.elapsed().as_secs_f64());
        }
    }
    times
}

/// Both engines must agree exactly on every workload before we time them.
fn equivalence_gate(g: &BipartiteGraph) -> Result<(), String> {
    let run = |e| fdet_with_engine(g, &MetricKind::default(), Truncation::KeepAll { k_max: 50 }, e);
    let (csr, naive) = (run(Engine::Csr), run(Engine::Naive));
    if csr.blocks != naive.blocks {
        return Err("FDET blocks differ between engines".into());
    }
    if csr.scores != naive.scores {
        return Err("FDET scores differ between engines".into());
    }
    let vote = |e| {
        EnsemFdet::new(EnsemFdetConfig {
            num_samples: 8,
            sample_ratio: 0.3,
            engine: e,
            seed: ENSEMBLE_SEED,
            ..Default::default()
        })
        .detect(g)
        .votes
        .user_scores()
    };
    if vote(Engine::Csr) != vote(Engine::Naive) {
        return Err("ensemble votes differ between engines".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Incremental-scan phase (BENCH_PR7.json)
// ---------------------------------------------------------------------------

/// Fraud-ring ramp epochs after the base batch.
const RAMP_EPOCHS: usize = 5;

/// Expected users per sample at the monitoring operating point. A cached
/// user-subset sample survives an epoch with probability
/// `(1 - ratio)^touched_users ≈ exp(-sample_users × touched_fraction)`,
/// so holding the sample *size* fixed (a per-sample peel budget) instead
/// of the ratio makes the reuse rate depend only on the delta's touched
/// fraction — scale-invariant across the presets (see docs/MONITORING.md
/// for the tuning math).
const SAMPLE_TARGET_USERS: f64 = 150.0;

const INCREMENTAL_THRESHOLD: u32 = ENSEMBLE_SAMPLES as u32 / 2;

fn incremental_ratio(users: usize) -> f64 {
    (SAMPLE_TARGET_USERS / users.max(1) as f64).min(0.05)
}

fn incremental_config(ratio: f64) -> EnsemFdetConfig {
    EnsemFdetConfig {
        num_samples: ENSEMBLE_SAMPLES,
        sample_ratio: ratio,
        method: SamplingMethodConfig::OneSideUser,
        seed: ENSEMBLE_SEED,
        ..Default::default()
    }
}

/// One ramping-campaign ingest sequence, compacted to a snapshot per
/// epoch. Built once per dataset; the timed reps replay scans over the
/// same snapshots so full and incremental always see identical graphs.
struct RampScenario {
    snapshots: Vec<Arc<ensemfdet::pipeline::Snapshot>>,
    store: SnapshotStore,
}

fn build_ramp(which: JdDataset, scale: u32) -> RampScenario {
    let tl = ramp_timeline(&jd_preset(which, scale, ENSEMBLE_SEED), RAMP_EPOCHS);
    let buffer = IngestBuffer::new();
    let store = SnapshotStore::new(1);
    let mut snapshots = Vec::new();
    for batch in std::iter::once(&tl.base).chain(tl.epochs.iter()) {
        buffer.append_batch(batch.iter().map(|&(u, v)| (UserId(u), MerchantId(v))));
        snapshots.push(store.refresh(&buffer, true));
    }
    RampScenario { snapshots, store }
}

/// The incremental chain must match a from-scratch scan bit for bit on
/// every epoch — votes and flagged set — before any timing happens.
fn incremental_gate(
    scenario: &RampScenario,
    ratio: f64,
    policy: &IncrementalPolicy,
) -> Result<(), String> {
    let cfg = incremental_config(ratio);
    let mut inc = ScanRunner::new();
    for (i, snapshot) in scenario.snapshots.iter().enumerate() {
        let a = inc.run_incremental(snapshot, &scenario.store, &cfg, INCREMENTAL_THRESHOLD, policy);
        let b = ScanRunner::new().run(snapshot, &cfg, INCREMENTAL_THRESHOLD);
        if a.votes != b.votes {
            return Err(format!("epoch {i}: vote tallies diverged"));
        }
        if a.flagged != b.flagged {
            return Err(format!("epoch {i}: flagged sets diverged"));
        }
    }
    Ok(())
}

/// Timing output of [`time_incremental_pair`]: outer index is the epoch,
/// inner vectors hold one wall time per measured rep; `reuse` carries the
/// deterministic per-epoch reuse stats plus the snapshot's transaction
/// count.
struct IncrementalTimings {
    full: Vec<Vec<f64>>,
    incremental: Vec<Vec<f64>>,
    reuse: Vec<(ReuseStats, usize)>,
}

/// Per-epoch wall times for the full and incremental chains, interleaved
/// back-to-back within every rep (same drift rationale as
/// [`time_workload_pair`]). Each rep replays the whole epoch sequence
/// with fresh runners, so the incremental chain's cache state is exactly
/// what a live `--follow` deployment would hold at that epoch: the first
/// epoch is always the cold-cache fallback and is timed as such. The
/// reuse stats are deterministic across reps (same seeds, same
/// snapshots) so they are recorded from the first measured rep.
fn time_incremental_pair(
    scenario: &RampScenario,
    ratio: f64,
    policy: &IncrementalPolicy,
    warmup: usize,
    reps: usize,
) -> IncrementalTimings {
    let cfg = incremental_config(ratio);
    let epochs = scenario.snapshots.len();
    for _ in 0..warmup {
        let mut full = ScanRunner::new();
        let mut inc = ScanRunner::new();
        for s in &scenario.snapshots {
            std::hint::black_box(full.run(s, &cfg, INCREMENTAL_THRESHOLD).flagged.len());
            std::hint::black_box(
                inc.run_incremental(s, &scenario.store, &cfg, INCREMENTAL_THRESHOLD, policy)
                    .flagged
                    .len(),
            );
        }
    }
    let mut full_times = vec![Vec::with_capacity(reps); epochs];
    let mut inc_times = vec![Vec::with_capacity(reps); epochs];
    let mut reuse = Vec::with_capacity(epochs);
    for rep in 0..reps {
        let mut full = ScanRunner::new();
        let mut inc = ScanRunner::new();
        for (e, s) in scenario.snapshots.iter().enumerate() {
            let t = Instant::now();
            let f = full.run(s, &cfg, INCREMENTAL_THRESHOLD);
            full_times[e].push(t.elapsed().as_secs_f64());
            std::hint::black_box(f.flagged.len());
            let t = Instant::now();
            let o = inc.run_incremental(s, &scenario.store, &cfg, INCREMENTAL_THRESHOLD, policy);
            inc_times[e].push(t.elapsed().as_secs_f64());
            std::hint::black_box(o.flagged.len());
            if rep == 0 {
                reuse.push((o.reuse, o.transactions));
            }
        }
    }
    IncrementalTimings {
        full: full_times,
        incremental: inc_times,
        reuse,
    }
}

#[derive(Serialize)]
struct IncrementalCell {
    dataset: &'static str,
    epoch: u64,
    transactions: usize,
    /// `"incremental"` when the reuse path ran, `"full"` otherwise (the
    /// cold-cache first epoch, or an oversized delta).
    mode: &'static str,
    fallback: Option<&'static str>,
    samples_reused: usize,
    samples_repeeled: usize,
    delta_touched_nodes: usize,
    delta_touched_fraction: f64,
    reps: usize,
    full_median_s: f64,
    incremental_median_s: f64,
    /// Median per-rep `full / incremental` wall-time ratio — above 1
    /// means the incremental scan won this epoch.
    full_over_incremental: f64,
}

#[derive(Serialize)]
struct IncrementalSpeedup {
    dataset: &'static str,
    /// Per-dataset ratio realizing [`SAMPLE_TARGET_USERS`].
    sample_ratio: f64,
    /// Median of the per-epoch `full_over_incremental` ratios across the
    /// epochs that actually took the reuse path (cold-cache and other
    /// fallback epochs excluded — those are full scans plus cache
    /// bookkeeping and are reported per-epoch, not here).
    full_over_incremental: f64,
    epochs_incremental: usize,
    epochs_fallback: usize,
}

#[derive(Serialize)]
struct IncrementalArtifact {
    schema: &'static str,
    smoke: bool,
    scale: u32,
    warmup: usize,
    reps: usize,
    ensemble_samples: usize,
    sample_target_users: f64,
    ramp_epochs: usize,
    max_touched_fraction: f64,
    equivalence: &'static str,
    datasets: Vec<DatasetInfo>,
    cells: Vec<IncrementalCell>,
    speedups: Vec<IncrementalSpeedup>,
}

// ---------------------------------------------------------------------------
// Full-scale phase (BENCH_PR8.json)
// ---------------------------------------------------------------------------

/// Population divisor for the full-scale phase: jd3 at `1/4` of Table I
/// (≈1.08M users, ≈0.66M merchants, ≈2.0M edges) — the largest graph the
/// suite times. Smoke runs substitute the tiny smoke scale.
const SCALE_DIVISOR: u32 = 4;

/// Ensemble ratios timed at full scale — the paper's operating points.
const SCALE_RATIOS: [f64; 2] = [0.01, 0.1];

/// Records in the ingest-parse comparison — sized to roughly one
/// `MAX_BODY` (1 MiB) batch, the largest body the endpoint accepts.
const INGEST_RECORDS: usize = 45_000;
const INGEST_RECORDS_SMOKE: usize = 2_000;

/// Worker threads the parallel variants run with: every core the machine
/// offers, but at least two so the sharded build and the sample pool
/// actually cross threads even on a single-core box — where the honest
/// result is the coordination overhead, not an ideal-parallel projection.
fn scale_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

/// The same records rendered as the two wire formats the ingest endpoint
/// accepts: the legacy `{"records": [[u, m], …]}` envelope and one
/// `["u", "m"]` line per record (NDJSON).
fn ingest_bodies(records: &[(String, String)]) -> (Vec<u8>, Vec<u8>) {
    let rendered: Vec<String> = records
        .iter()
        .map(|(u, m)| format!("[\"{u}\",\"{m}\"]"))
        .collect();
    let json = format!("{{\"records\":[{}]}}", rendered.join(",")).into_bytes();
    let mut ndjson = rendered.join("\n");
    ndjson.push('\n');
    (json, ndjson.into_bytes())
}

/// Every parallel variant must match its sequential baseline before any
/// timing: the sharded CSR build bit-identical to the sequential counting
/// sort (edge arrays and every adjacency row), the worker-pool ensemble
/// bit-identical to the single-worker drain (votes, evidence, per-sample
/// diagnostics), and the NDJSON parser agreeing with the JSON-array
/// parser on the same records.
fn scale_equivalence_gate(g: &BipartiteGraph, workers: usize) -> Result<(), String> {
    let seq = CsrView::from_graph(g);
    let shard = CsrView::from_graph_sharded(g, workers);
    if shard.edge_ids() != seq.edge_ids()
        || shard.edge_users() != seq.edge_users()
        || shard.edge_merchants() != seq.edge_merchants()
        || shard.edge_weights() != seq.edge_weights()
    {
        return Err("sharded CSR edge arrays differ from sequential".into());
    }
    for u in 0..g.num_users() as u32 {
        if shard.user_neighbors(UserId(u)).pairs != seq.user_neighbors(UserId(u)).pairs {
            return Err(format!("sharded CSR user row {u} differs from sequential"));
        }
    }
    for v in 0..g.num_merchants() as u32 {
        if shard.merchant_neighbors(MerchantId(v)).pairs != seq.merchant_neighbors(MerchantId(v)).pairs
        {
            return Err(format!("sharded CSR merchant row {v} differs from sequential"));
        }
    }

    let cfg = EnsemFdetConfig {
        num_samples: ENSEMBLE_SAMPLES,
        sample_ratio: SCALE_RATIOS[0],
        seed: ENSEMBLE_SEED,
        ..Default::default()
    };
    let one = EnsemFdet::with_workers(cfg, 1).detect(g);
    let par = EnsemFdet::with_workers(cfg, workers).detect(g);
    if par.votes != one.votes {
        return Err(format!("ensemble votes differ between 1 and {workers} workers"));
    }
    if par.evidence.user_evidence != one.evidence.user_evidence {
        return Err(format!("evidence differs between 1 and {workers} workers"));
    }
    for (a, b) in one.samples.iter().zip(&par.samples) {
        if a.scores != b.scores
            || a.sample_nodes != b.sample_nodes
            || a.sample_edges != b.sample_edges
            || a.k_hat != b.k_hat
        {
            return Err(format!(
                "sample #{} diagnostics differ between 1 and {workers} workers",
                a.index
            ));
        }
    }

    let records: Vec<(String, String)> = (0..512)
        .map(|i| (format!("user-{i}"), format!("store-{}", i % 37)))
        .collect();
    let (json, ndjson) = ingest_bodies(&records);
    let a = parse_json_records(&json).map_err(|_| "JSON-array parser rejected valid records")?;
    let b = parse_ndjson_records(&ndjson).map_err(|_| "NDJSON parser rejected valid records")?;
    if a != records || b != records {
        return Err("ingest parsers disagree with the source records".into());
    }
    Ok(())
}

/// `warmup` unmeasured alternating runs, then `reps` measured wall times
/// per variant, interleaved baseline/variant within every rep (same
/// drift rationale as [`time_workload_pair`]).
fn time_variant_pair(
    warmup: usize,
    reps: usize,
    mut baseline: impl FnMut(),
    mut variant: impl FnMut(),
) -> (Vec<f64>, Vec<f64>) {
    for _ in 0..warmup {
        baseline();
        variant();
    }
    let mut base_t = Vec::with_capacity(reps);
    let mut var_t = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        baseline();
        base_t.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        variant();
        var_t.push(t.elapsed().as_secs_f64());
    }
    (base_t, var_t)
}

#[derive(Serialize)]
struct ScaleCell {
    workload: String,
    variant: String,
    reps: usize,
    median_s: f64,
    p95_s: f64,
    min_s: f64,
}

#[derive(Serialize)]
struct ScaleSpeedup {
    workload: String,
    baseline: String,
    variant: String,
    /// Median of the per-rep `baseline / variant` wall-time ratios —
    /// above 1 means the parallel (or NDJSON) variant won. Measured, not
    /// an ideal-parallel projection: on a single-core machine the
    /// threaded variants land near (or below) 1×, and that is the number
    /// recorded.
    speedup: f64,
}

#[derive(Serialize)]
struct ScaleArtifact {
    schema: &'static str,
    smoke: bool,
    /// Population divisor of this phase's jd3 graph (always
    /// [`SCALE_DIVISOR`] on full runs, regardless of `--scale`).
    scale: u32,
    warmup: usize,
    reps: usize,
    ensemble_samples: usize,
    /// Worker threads the parallel variants ran with.
    workers: usize,
    /// What the machine actually offered; when `workers` exceeds it the
    /// pool oversubscribes and the speedups honestly show the overhead.
    available_parallelism: usize,
    ingest_records: usize,
    ingest_json_bytes: usize,
    ingest_ndjson_bytes: usize,
    equivalence: &'static str,
    dataset: DatasetInfo,
    cells: Vec<ScaleCell>,
    speedups: Vec<ScaleSpeedup>,
}

/// Reduces one timed baseline/variant pair to its two [`ScaleCell`]s and
/// a [`ScaleSpeedup`], printing the console row.
fn summarize_scale_pair(
    workload: &str,
    names: [&str; 2],
    base: Vec<f64>,
    var: Vec<f64>,
    reps: usize,
    cells: &mut Vec<ScaleCell>,
    speedups: &mut Vec<ScaleSpeedup>,
) {
    let mut ratios: Vec<f64> = base.iter().zip(&var).map(|(b, v)| b / v.max(1e-12)).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let speedup = median(&ratios);
    let mut medians = [0.0f64; 2];
    for (slot, (name, times)) in names.into_iter().zip([base, var]).enumerate() {
        let mut times = times;
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        medians[slot] = median(&times);
        cells.push(ScaleCell {
            workload: workload.to_string(),
            variant: name.to_string(),
            reps,
            median_s: median(&times),
            p95_s: percentile(&times, 0.95),
            min_s: times[0],
        });
    }
    println!(
        "{:<18} {:<12} {:>10.3} ms  {:<12} {:>10.3} ms  speedup {:.2}x",
        workload,
        names[0],
        medians[0] * 1e3,
        names[1],
        medians[1] * 1e3,
        speedup
    );
    speedups.push(ScaleSpeedup {
        workload: workload.to_string(),
        baseline: names[0].to_string(),
        variant: names[1].to_string(),
        speedup,
    });
}

// ---------------------------------------------------------------------------
// Hybrid-scoring phase (BENCH_PR9.json)
// ---------------------------------------------------------------------------

/// Camouflage purchases per fraud user at each swept operating point.
const CAMO_LEVELS: [usize; 4] = [0, 2, 6, 12];
/// Ensemble operating point of the camouflage ablation. Stronger than
/// the `ablation_camouflage` binary's N=40/S=0.1: under heavy
/// camouflage the vote component needs deep sampling before the fused
/// score can match Fraudar's full-graph peeling.
const HYBRID_SAMPLES: usize = 120;
const HYBRID_RATIO: f64 = 0.4;
const HYBRID_SEED: u64 = 0xCA31;
/// Tolerance of the dominance assertion: the calibrated hybrid must
/// reach at least `best_single - eps` at every camouflage level.
const HYBRID_EPS: f64 = 1e-9;

/// The detector registry must reproduce the bespoke entry points before
/// the hybrid fusion built on it is trusted: every adapter's scores
/// finite in `[0, 1]` and ranking users exactly as the legacy
/// `score_users` path (compared via rank normalization, which ignores
/// how ties are stored), Fraudar's block structure unchanged, and each
/// degenerate fusion corner reproducing its component's ranking.
fn hybrid_equivalence_gate(g: &BipartiteGraph) -> Result<(), String> {
    let ctx = DetectContext::new(g);
    let ranks = |s: &[f64]| normalize_scores(s, ScoreNormalization::Rank);
    for det in standard_detectors() {
        let out = det.score(&ctx);
        if out.scores.len() != g.num_users() {
            return Err(format!("{}: wrong score length", det.name()));
        }
        if !out
            .scores
            .iter()
            .all(|s| s.is_finite() && (0.0..=1.0).contains(s))
        {
            return Err(format!("{}: scores leave [0, 1]", det.name()));
        }
        let legacy = match det.name() {
            "spoken" => Some(Spoken::default().score_users(g)),
            "fbox" => Some(FBox::default().score_users(g)),
            "hits" => Some(Hits::default().score_users(g)),
            "kcore" => Some(KCoreBaseline.score_users(g)),
            "degree" => Some(DegreeBaseline.score_users(g)),
            _ => None,
        };
        if let Some(legacy) = legacy {
            if ranks(&out.scores) != ranks(&legacy) {
                return Err(format!(
                    "{}: adapter ranking differs from the bespoke entry point",
                    det.name()
                ));
            }
        }
    }
    let fraudar = Fraudar::default();
    let trait_blocks = fraudar
        .score(&ctx)
        .blocks
        .ok_or("fraudar: adapter lost the block structure")?;
    if trait_blocks != fraudar.run(g).blocks {
        return Err("fraudar: adapter blocks differ from Fraudar::run".into());
    }

    let vote = EnsemFdet::new(EnsemFdetConfig {
        num_samples: 8,
        sample_ratio: 0.3,
        seed: ENSEMBLE_SEED,
        ..Default::default()
    })
    .detect(g)
    .votes
    .user_scores();
    let base = ScoringConfig::enabled();
    let spectral = spectral_scores(&ctx, &base);
    let kcore = kcore_scores(&ctx);
    for (weights, component, name) in [
        ([1.0, 0.0, 0.0], &vote, "vote"),
        ([0.0, 1.0, 0.0], &spectral, "spectral"),
        ([0.0, 0.0, 1.0], &kcore, "kcore"),
    ] {
        let corner = ScoringConfig {
            vote_weight: weights[0],
            spectral_weight: weights[1],
            kcore_weight: weights[2],
            ..base
        };
        let fused = HybridScorer::new(corner).fuse(&vote, &spectral, &kcore);
        if ranks(&fused) != ranks(component) {
            return Err(format!(
                "degenerate weight corner `{name}` does not reproduce the component ranking"
            ));
        }
    }
    Ok(())
}

#[derive(Serialize)]
struct HybridCell {
    camouflage_per_user: usize,
    method: String,
    best_f1: f64,
    auc_pr: f64,
}

#[derive(Serialize)]
struct HybridLevel {
    camouflage_per_user: usize,
    hybrid_best_f1: f64,
    hybrid_auc_pr: f64,
    /// The fitted `[vote, spectral, kcore]` weights at this level.
    calibrated_weights: [f64; 3],
    /// The strongest single method at this level and its best F1 — the
    /// bar the hybrid must clear.
    best_single_method: String,
    best_single_f1: f64,
    /// `hybrid_best_f1 - best_single_f1`; never below `-eps` or the
    /// suite exits 1.
    margin: f64,
}

#[derive(Serialize)]
struct HybridArtifact {
    schema: &'static str,
    smoke: bool,
    scale: u32,
    ensemble_samples: usize,
    sample_ratio: f64,
    camouflage_levels: Vec<usize>,
    equivalence: &'static str,
    dominance: &'static str,
    cells: Vec<HybridCell>,
    levels: Vec<HybridLevel>,
}

// ---------------------------------------------------------------------------
// Parallel bulk-ingest phase (BENCH_PR10.json)
// ---------------------------------------------------------------------------

/// Loader worker counts swept by the ingest phase: serial, one doubling,
/// and everything the machine offers.
fn ingest_worker_counts(workers: usize) -> Vec<usize> {
    let mut counts = vec![1, 2, workers];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// The chunked loader must be bit-identical to its serial scan for every
/// worker count — assigned ids (both key dictionaries in id order), edge
/// arrays, amount-summed weights (compared as f64 bits), record/line
/// accounting, and the ensemble votes a scan of the loaded graph
/// produces. Returns the serial reference load for the timing stage.
fn ingest_equivalence_gate(
    log: &[u8],
    workers: usize,
) -> Result<ensemfdet_graph::LoadedLog, String> {
    let serial = load_transactions(log, &LoadOptions::default())
        .map_err(|e| format!("serial load failed: {e}"))?;
    let keys_of = |i: &ArenaTransactionInterner| -> (Vec<String>, Vec<String>) {
        (
            i.users().keys().map(str::to_string).collect(),
            i.merchants().keys().map(str::to_string).collect(),
        )
    };
    let weight_bits = |g: &BipartiteGraph| -> Vec<u64> {
        (0..g.num_edges()).map(|e| g.edge_weight(e).to_bits()).collect()
    };
    let cfg = EnsemFdetConfig {
        num_samples: ENSEMBLE_SAMPLES,
        sample_ratio: SCALE_RATIOS[0],
        seed: ENSEMBLE_SEED,
        ..Default::default()
    };
    let serial_votes = EnsemFdet::new(cfg).detect(&serial.graph).votes;
    for w in ingest_worker_counts(workers).into_iter().filter(|&w| w > 1) {
        let par = load_transactions(
            log,
            &LoadOptions {
                workers: w,
                ..Default::default()
            },
        )
        .map_err(|e| format!("{w}-worker load failed: {e}"))?;
        if par.records != serial.records || par.lines != serial.lines {
            return Err(format!("{w}-worker load counts differ from serial"));
        }
        if keys_of(&par.interner) != keys_of(&serial.interner) {
            return Err(format!("{w}-worker interner ids differ from serial"));
        }
        if par.graph.edge_pairs() != serial.graph.edge_pairs() {
            return Err(format!("{w}-worker edge arrays differ from serial"));
        }
        if weight_bits(&par.graph) != weight_bits(&serial.graph) {
            return Err(format!(
                "{w}-worker amount-summed weights differ from serial (f64 bits)"
            ));
        }
        if EnsemFdet::new(cfg).detect(&par.graph).votes != serial_votes {
            return Err(format!("{w}-worker load changes ensemble votes"));
        }
    }

    // The sharded interner must assign the same dense arrival-order ids
    // as the serial arena when driven from one thread, and stay
    // internally consistent when driven from many.
    let pairs = parse_log_pairs(log)?;
    let sharded = ConcurrentTransactionInterner::new();
    for (u, m) in &pairs {
        sharded.user(u);
        sharded.merchant(m);
    }
    let (users, merchants) = keys_of(&serial.interner);
    if sharded.num_users() != users.len() || sharded.num_merchants() != merchants.len() {
        return Err("sharded interner key counts differ from serial arena".into());
    }
    for (id, key) in users.iter().enumerate() {
        if sharded.find_user(key).map(|u| u.0) != Some(id as u32) {
            return Err(format!("sharded interner id for `{key}` differs from serial"));
        }
    }
    let concurrent = ConcurrentTransactionInterner::new();
    std::thread::scope(|scope| {
        for shard in pairs.chunks(pairs.len().div_ceil(workers.max(2))) {
            let concurrent = &concurrent;
            scope.spawn(move || {
                for (u, m) in shard {
                    concurrent.user(u);
                    concurrent.merchant(m);
                }
            });
        }
    });
    if concurrent.num_users() != users.len() || concurrent.num_merchants() != merchants.len() {
        return Err("concurrently-driven sharded interner lost or invented keys".into());
    }
    for key in &users {
        let id = concurrent
            .find_user(key)
            .ok_or_else(|| format!("concurrently-driven interner lost `{key}`"))?;
        if concurrent.user_key(id) != *key {
            return Err(format!("concurrently-driven interner id for `{key}` inconsistent"));
        }
    }
    Ok(serial)
}

/// Pre-parses the log into `(user, merchant)` key pairs so interner
/// timing measures interning, not CSV splitting.
fn parse_log_pairs(log: &[u8]) -> Result<Vec<(String, String)>, String> {
    let text = std::str::from_utf8(log).map_err(|e| format!("log not UTF-8: {e}"))?;
    let mut pairs = Vec::new();
    for line in text.lines() {
        if let Some((u, m, _)) =
            parse_csv_record(line, ',').map_err(|e| format!("log line rejected: {e}"))?
        {
            pairs.push((u.to_string(), m.to_string()));
        }
    }
    Ok(pairs)
}

/// `warmup` unmeasured rounds, then `reps` measured ones with all
/// variants interleaved back-to-back within every rep; each variant's
/// allocation footprint is captured once, on the first measured rep.
fn time_ingest_variants(
    warmup: usize,
    reps: usize,
    variants: &mut [&mut dyn FnMut()],
) -> (Vec<Vec<f64>>, Vec<usize>) {
    for _ in 0..warmup {
        for v in variants.iter_mut() {
            v();
        }
    }
    let mut times = vec![Vec::with_capacity(reps); variants.len()];
    let mut bytes = vec![0usize; variants.len()];
    for rep in 0..reps {
        for (slot, v) in variants.iter_mut().enumerate() {
            let t = Instant::now();
            let (_, allocated, ()) = counted_alloc(&mut **v);
            times[slot].push(t.elapsed().as_secs_f64());
            if rep == 0 {
                bytes[slot] = allocated;
            }
        }
    }
    (times, bytes)
}

#[derive(Serialize)]
struct IngestCell {
    workload: String,
    variant: String,
    reps: usize,
    median_s: f64,
    p95_s: f64,
    min_s: f64,
    /// Throughput at the median wall time.
    records_per_sec: f64,
    /// Heap bytes requested during one run of this variant.
    alloc_bytes: usize,
}

/// Reduces one timed variant family (slot 0 = baseline) to its
/// [`IngestCell`]s and per-variant [`ScaleSpeedup`]s, printing console
/// rows.
#[allow(clippy::too_many_arguments)]
fn summarize_ingest_variants(
    workload: &str,
    names: &[String],
    times: &[Vec<f64>],
    alloc: &[usize],
    records: usize,
    reps: usize,
    cells: &mut Vec<IngestCell>,
    speedups: &mut Vec<ScaleSpeedup>,
) {
    let mut medians = vec![0.0f64; names.len()];
    for (slot, name) in names.iter().enumerate() {
        let mut t = times[slot].clone();
        t.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        medians[slot] = median(&t);
        cells.push(IngestCell {
            workload: workload.to_string(),
            variant: name.clone(),
            reps,
            median_s: medians[slot],
            p95_s: percentile(&t, 0.95),
            min_s: t[0],
            records_per_sec: records as f64 / medians[slot].max(1e-12),
            alloc_bytes: alloc[slot],
        });
    }
    for slot in 0..names.len() {
        let line = format!(
            "{:<9} {:<14} {:>9.3} ms  {:>9.0} rec/s  {:>7.1} MiB alloc",
            workload,
            names[slot],
            medians[slot] * 1e3,
            records as f64 / medians[slot].max(1e-12),
            alloc[slot] as f64 / (1024.0 * 1024.0),
        );
        if slot == 0 {
            println!("{line}");
            continue;
        }
        let mut ratios: Vec<f64> = times[0]
            .iter()
            .zip(&times[slot])
            .map(|(b, v)| b / v.max(1e-12))
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let speedup = median(&ratios);
        println!("{line}  speedup {speedup:.2}x");
        speedups.push(ScaleSpeedup {
            workload: workload.to_string(),
            baseline: names[0].clone(),
            variant: names[slot].clone(),
            speedup,
        });
    }
}

#[derive(Serialize)]
struct IngestArtifact {
    schema: &'static str,
    smoke: bool,
    /// Population divisor of the jd3 graph behind the log.
    scale: u32,
    warmup: usize,
    reps: usize,
    workers: usize,
    /// What the machine actually offered; with one core the parallel
    /// loader honestly lands near (or below) 1× and that is the number
    /// recorded.
    available_parallelism: usize,
    /// Data records in the generated transaction log.
    records: usize,
    /// Distinct `(user, merchant)` pairs — the weighted edge count after
    /// amount-summing.
    distinct_pairs: usize,
    log_bytes: usize,
    equivalence: &'static str,
    dataset: DatasetInfo,
    cells: Vec<IngestCell>,
    speedups: Vec<ScaleSpeedup>,
}

/// Drives the HTTP service's v1 surface over a real socket: ingest a
/// small ring, submit an async scan job, poll it to completion, read the
/// latest result. Any deviation is a hard error.
fn service_smoke() -> Result<(), String> {
    use ensemfdet::{EnsemFdetConfig as DetCfg, MonitorConfig};
    use ensemfdet_service::{Api, ApiConfig, Server};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let api = Api::new(ApiConfig {
        monitor: MonitorConfig {
            detector: DetCfg {
                num_samples: 8,
                sample_ratio: 0.5,
                seed: ENSEMBLE_SEED,
                ..Default::default()
            },
            scan_interval: 1_000_000,
            alert_threshold: 4,
            min_transactions: 0,
        },
        ..Default::default()
    });
    let server = Server::bind("127.0.0.1:0", api)
        .map_err(|e| format!("bind: {e}"))?
        .start()
        .map_err(|e| format!("start: {e}"))?;
    let addr = server.addr();

    let roundtrip = |raw: String| -> Result<String, String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("timeout: {e}"))?;
        stream.write_all(raw.as_bytes()).map_err(|e| format!("send: {e}"))?;
        let mut out = String::new();
        stream.read_to_string(&mut out).map_err(|e| format!("recv: {e}"))?;
        Ok(out)
    };
    let expect = |resp: &str, status: &str, step: &str| -> Result<(), String> {
        if resp.starts_with(&format!("HTTP/1.1 {status}")) {
            Ok(())
        } else {
            Err(format!("{step}: expected {status}, got: {resp}"))
        }
    };

    let mut records = Vec::new();
    for b in 0..8 {
        for s in 0..5 {
            records.push(format!("[\"bot-{b}\",\"ring-{s}\"]"));
        }
    }
    for p in 0..60 {
        records.push(format!("[\"pin-{p}\",\"store-{}\"]", p % 20));
    }
    let body = format!("{{\"records\":[{}]}}", records.join(","));
    let resp = roundtrip(format!(
        "POST /v1/transactions HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    ))?;
    expect(&resp, "200", "POST /v1/transactions")?;

    // NDJSON bulk path on the same endpoint: one record per line, and a
    // malformed line must 400 with its 1-based line number without
    // ingesting anything.
    let nd_body: String = (0..10)
        .map(|p| format!("[\"pin-nd-{p}\",\"store-{}\"]\n", p % 20))
        .collect();
    let resp = roundtrip(format!(
        "POST /v1/transactions HTTP/1.1\r\ncontent-type: application/x-ndjson\r\n\
         content-length: {}\r\n\r\n{nd_body}",
        nd_body.len()
    ))?;
    expect(&resp, "200", "POST /v1/transactions (ndjson)")?;
    let bad = "[\"only-one-field\"]\n";
    let resp = roundtrip(format!(
        "POST /v1/transactions HTTP/1.1\r\ncontent-type: application/x-ndjson\r\n\
         content-length: {}\r\n\r\n{bad}",
        bad.len()
    ))?;
    expect(&resp, "400", "POST bad NDJSON line")?;
    if !resp.contains("\"line\":1") {
        return Err(format!("bad NDJSON line not pinpointed: {resp}"));
    }

    let submit = |body: &str| -> Result<u64, String> {
        let resp = roundtrip(format!(
            "POST /v1/scans HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ))?;
        expect(&resp, "202", "POST /v1/scans")?;
        resp.split("\"job_id\":")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("no job_id in: {resp}"))
    };
    let poll_done = |job_id: u64| -> Result<String, String> {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let resp = roundtrip(format!("GET /v1/scans/{job_id} HTTP/1.1\r\n\r\n"))?;
            expect(&resp, "200", "GET /v1/scans/{id}")?;
            if resp.contains("\"status\":\"done\"") {
                return Ok(resp);
            }
            if resp.contains("\"status\":\"failed\"") {
                return Err(format!("scan job failed: {resp}"));
            }
            if Instant::now() > deadline {
                return Err(format!("scan job never finished: {resp}"));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    let resp = poll_done(submit("{}")?)?;
    if !resp.contains("bot-") {
        return Err(format!("scan flagged no ring accounts: {resp}"));
    }
    // A per-scan workers override must run and echo the effective count.
    let resp = poll_done(submit("{\"workers\":2}")?)?;
    if !resp.contains("\"workers\":2") {
        return Err(format!("workers override not echoed in result: {resp}"));
    }
    // A per-scan scoring override must run the hybrid pass and echo the
    // component breakdown in the result.
    let resp = poll_done(submit("{\"scoring\":{\"hybrid_threshold\":0.5}}")?)?;
    if !resp.contains("\"scoring\"") || !resp.contains("\"hybrid_flagged\"") {
        return Err(format!("scoring override not echoed in result: {resp}"));
    }
    if !resp.contains("\"account_scores\"") {
        return Err(format!("scoring result missing component scores: {resp}"));
    }

    // text/csv bulk path: `user,merchant[,amount]` lines with comments,
    // duplicates, and the same per-line error contract as NDJSON. Runs
    // after the scan assertions so the extra accounts cannot perturb the
    // seeded sample draws those scans are checked against.
    let csv_body: String = std::iter::once("# csv batch\n".to_string())
        .chain((0..10).map(|p| format!("pin-csv-{p},store-{},4.25\n", p % 20)))
        .chain(std::iter::once("pin-csv-0,store-0,1.75\n".to_string()))
        .collect();
    let resp = roundtrip(format!(
        "POST /v1/transactions HTTP/1.1\r\ncontent-type: text/csv\r\n\
         content-length: {}\r\n\r\n{csv_body}",
        csv_body.len()
    ))?;
    expect(&resp, "200", "POST /v1/transactions (csv)")?;
    if !resp.contains("\"ingested\":11") {
        return Err(format!("csv ingest miscounted records: {resp}"));
    }
    let bad_csv = "no-merchant-field\n";
    let resp = roundtrip(format!(
        "POST /v1/transactions HTTP/1.1\r\ncontent-type: text/csv\r\n\
         content-length: {}\r\n\r\n{bad_csv}",
        bad_csv.len()
    ))?;
    expect(&resp, "400", "POST bad CSV line")?;
    if !resp.contains("\"line\":1") {
        return Err(format!("bad CSV line not pinpointed: {resp}"));
    }

    let resp = roundtrip("GET /v1/scans/latest HTTP/1.1\r\n\r\n".into())?;
    expect(&resp, "200", "GET /v1/scans/latest")?;
    let resp = roundtrip("GET /v1/config HTTP/1.1\r\n\r\n".into())?;
    expect(&resp, "200", "GET /v1/config")?;
    if !resp.contains("\"workers\"") {
        return Err(format!("config page missing workers: {resp}"));
    }
    let resp = roundtrip("GET /metrics HTTP/1.1\r\n\r\n".into())?;
    expect(&resp, "200", "GET /metrics")?;
    if !resp.contains("ensemfdet_scans_total 3") {
        return Err(format!("scans not counted in metrics: {resp}"));
    }
    if !resp.contains("ensemfdet_scans_hybrid_total 1") {
        return Err(format!("hybrid scan not counted in metrics: {resp}"));
    }
    if !resp.contains("ensemfdet_ingest_load_duration_seconds_count{format=\"csv\"} 1") {
        return Err(format!("csv bulk load not recorded in metrics: {resp}"));
    }
    if !resp.contains("ensemfdet_interner_keys_total{side=\"user\"}") {
        return Err(format!("interner gauges missing from metrics: {resp}"));
    }
    server.shutdown();
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let out_sampling = args
        .iter()
        .position(|a| a == "--out-sampling")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let out_peel = args
        .iter()
        .position(|a| a == "--out-peel")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let out_incremental = args
        .iter()
        .position(|a| a == "--out-incremental")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let out_scale = args
        .iter()
        .position(|a| a == "--out-scale")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());
    let out_hybrid = args
        .iter()
        .position(|a| a == "--out-hybrid")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());
    let out_ingest = args
        .iter()
        .position(|a| a == "--out-ingest")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    // Smoke mode: tiny datasets, minimal repetitions — a CI-speed check
    // that the harness runs end-to-end and the engines stay equivalent.
    let scale = if smoke { 400 } else { resolve_scale(&args) };
    let (warmup, reps) = if smoke { (1, 2) } else { (2, 7) };

    println!(
        "== bench_suite: csr vs naive peeling engines (scale 1/{scale}{}) ==\n",
        if smoke { ", smoke" } else { "" }
    );

    let suite: Vec<(JdDataset, ensemfdet_datagen::Dataset)> = [JdDataset::Jd1, JdDataset::Jd3]
        .into_iter()
        .map(|w| (w, datasets::load(w, scale)))
        .collect();

    let mut infos = Vec::new();
    for (which, ds) in &suite {
        println!(
            "{}: {} users, {} merchants, {} edges",
            dataset_tag(*which),
            ds.graph.num_users(),
            ds.graph.num_merchants(),
            ds.graph.num_edges()
        );
        infos.push(DatasetInfo {
            name: dataset_tag(*which),
            users: ds.graph.num_users(),
            merchants: ds.graph.num_merchants(),
            edges: ds.graph.num_edges(),
        });
        print!("equivalence gate (engines) ... ");
        if let Err(e) = equivalence_gate(&ds.graph) {
            println!("FAILED");
            eprintln!("engine equivalence gate failed on {}: {e}", dataset_tag(*which));
            std::process::exit(1);
        }
        println!("ok");
        print!("equivalence gate (bucket engines) ... ");
        if let Err(e) = peel_engine_gate(&ds.graph) {
            println!("FAILED");
            eprintln!(
                "peel-engine equivalence gate failed on {}: {e}",
                dataset_tag(*which)
            );
            std::process::exit(1);
        }
        println!("ok");
        print!("equivalence gate (sampling paths) ... ");
        if let Err(e) = sampling_equivalence_gate(&ds.graph) {
            println!("FAILED");
            eprintln!(
                "sampling-path equivalence gate failed on {}: {e}",
                dataset_tag(*which)
            );
            std::process::exit(1);
        }
        println!("ok");
    }
    let service = if smoke {
        print!("service v1 smoke ... ");
        if let Err(e) = service_smoke() {
            println!("FAILED");
            eprintln!("service smoke failed: {e}");
            std::process::exit(1);
        }
        println!("ok");
        "ok"
    } else {
        "skipped"
    };
    println!();

    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    for w in WORKLOADS {
        for (which, ds) in &suite {
            let (naive, csr) = time_workload_pair(w.kind, &ds.graph, warmup, reps);
            // Speedup = median of the per-pair ratios, so slow background
            // drift (which hits both halves of a pair equally) cancels.
            let mut ratios: Vec<f64> = naive
                .iter()
                .zip(&csr)
                .map(|(n, c)| n / c.max(1e-12))
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            let ratio = median(&ratios);
            let mut medians = [0.0f64; 2];
            for (slot, (engine, times)) in
                [(Engine::Naive, naive), (Engine::Csr, csr)].into_iter().enumerate()
            {
                let mut times = times;
                times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                medians[slot] = median(&times);
                cells.push(Cell {
                    workload: w.name,
                    dataset: dataset_tag(*which),
                    engine: engine.name(),
                    reps,
                    median_s: median(&times),
                    p95_s: percentile(&times, 0.95),
                    min_s: times[0],
                });
            }
            println!(
                "{:<16} {:<4} naive {:>9.3} ms  csr {:>9.3} ms  speedup {:.2}x",
                w.name,
                dataset_tag(*which),
                medians[0] * 1e3,
                medians[1] * 1e3,
                ratio
            );
            speedups.push(Speedup {
                workload: w.name,
                dataset: dataset_tag(*which),
                csr_over_naive: ratio,
            });
        }
    }

    let artifact = Artifact {
        schema: "ensemfdet-bench-suite/v1",
        smoke,
        scale,
        warmup,
        reps,
        ensemble_samples: ENSEMBLE_SAMPLES,
        equivalence: "ok",
        service_smoke: service,
        datasets: infos.clone(),
        cells,
        speedups,
    };
    match ensemfdet_eval::write_json(&artifact, &out_path) {
        Ok(()) => println!("\n[saved {out_path}]"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    // -- Sampling-path phase ------------------------------------------------
    println!("\n== bench_suite: mask vs materialize sampling paths ==\n");
    let mut path_cells = Vec::new();
    let mut path_speedups = Vec::new();
    for ratio in SAMPLING_RATIOS {
        for (which, ds) in &suite {
            let (materialize, mask, bytes) =
                time_sampling_pair(ratio, &ds.graph, warmup, reps);
            let (dp_materialize, dp_mask) = time_data_path_pair(ratio, &ds.graph, warmup, reps);
            for (workload, materialize, mask) in [
                (format!("ensemble_s{ratio:.2}"), materialize, mask),
                (format!("sampling_s{ratio:.2}"), dp_materialize, dp_mask),
            ] {
                let mut ratios: Vec<f64> = materialize
                    .iter()
                    .zip(&mask)
                    .map(|(m, k)| m / k.max(1e-12))
                    .collect();
                ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
                let speedup = median(&ratios);
                let mut medians = [0.0f64; 2];
                for (slot, (path, times)) in [("materialize", materialize), ("mask", mask)]
                    .into_iter()
                    .enumerate()
                {
                    let mut times = times;
                    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                    medians[slot] = median(&times);
                    path_cells.push(PathCell {
                        workload: workload.clone(),
                        dataset: dataset_tag(*which),
                        path,
                        reps,
                        median_s: median(&times),
                        p95_s: percentile(&times, 0.95),
                        min_s: times[0],
                        sample_bytes: bytes[slot],
                    });
                }
                println!(
                    "{:<16} {:<4} materialize {:>9.3} ms  mask {:>9.3} ms  speedup {:.2}x  bytes {:.0}x",
                    workload,
                    dataset_tag(*which),
                    medians[0] * 1e3,
                    medians[1] * 1e3,
                    speedup,
                    bytes[0] as f64 / bytes[1].max(1) as f64,
                );
                path_speedups.push(PathSpeedup {
                    workload: workload.clone(),
                    dataset: dataset_tag(*which),
                    mask_over_materialize: speedup,
                    bytes_ratio: bytes[0] as f64 / bytes[1].max(1) as f64,
                });
            }
        }
    }
    let sampling_artifact = SamplingArtifact {
        schema: "ensemfdet-sampling-path/v1",
        smoke,
        scale,
        warmup,
        reps,
        ensemble_samples: ENSEMBLE_SAMPLES,
        equivalence: "ok",
        datasets: infos.clone(),
        cells: path_cells,
        speedups: path_speedups,
    };
    match ensemfdet_eval::write_json(&sampling_artifact, &out_sampling) {
        Ok(()) => println!("\n[saved {out_sampling}]"),
        Err(e) => {
            eprintln!("cannot write {out_sampling}: {e}");
            std::process::exit(1);
        }
    }

    // -- Peel-engine phase --------------------------------------------------
    println!("\n== bench_suite: csr vs bucket vs bucket-batch peel engines ==\n");
    let mut peel_cells = Vec::new();
    let mut peel_speedups = Vec::new();
    for w in [WORKLOADS[0], WORKLOADS[1]] {
        for (which, ds) in &suite {
            let trio = time_engine_trio(w.kind, &ds.graph, warmup, reps);
            // Per-rep csr/challenger ratios — slot 0 is csr.
            let ratio_vs_csr = |slot: usize| -> f64 {
                let mut ratios: Vec<f64> = trio[0]
                    .iter()
                    .zip(&trio[slot])
                    .map(|(c, x)| c / x.max(1e-12))
                    .collect();
                ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
                median(&ratios)
            };
            let (bucket_ratio, batch_ratio) = (ratio_vs_csr(1), ratio_vs_csr(2));
            let mut medians = [0.0f64; 3];
            for (slot, engine) in PEEL_ENGINES.into_iter().enumerate() {
                let mut times = trio[slot].clone();
                times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                medians[slot] = median(&times);
                peel_cells.push(Cell {
                    workload: w.name,
                    dataset: dataset_tag(*which),
                    engine: engine.name(),
                    reps,
                    median_s: median(&times),
                    p95_s: percentile(&times, 0.95),
                    min_s: times[0],
                });
            }
            println!(
                "{:<6} {:<4} csr {:>9.3} ms  bucket {:>9.3} ms ({:.2}x)  bucket-batch {:>9.3} ms ({:.2}x)",
                w.name,
                dataset_tag(*which),
                medians[0] * 1e3,
                medians[1] * 1e3,
                bucket_ratio,
                medians[2] * 1e3,
                batch_ratio,
            );
            peel_speedups.push(PeelSpeedup {
                workload: w.name,
                dataset: dataset_tag(*which),
                bucket_over_csr: bucket_ratio,
                bucket_batch_over_csr: batch_ratio,
            });
        }
    }
    let peel_artifact = PeelArtifact {
        schema: "ensemfdet-peel-engine/v1",
        smoke,
        scale,
        warmup,
        reps,
        equivalence: "bucket: bit-identical; bucket-batch: score-equality",
        datasets: infos,
        cells: peel_cells,
        speedups: peel_speedups,
    };
    match ensemfdet_eval::write_json(&peel_artifact, &out_peel) {
        Ok(()) => println!("\n[saved {out_peel}]"),
        Err(e) => {
            eprintln!("cannot write {out_peel}: {e}");
            std::process::exit(1);
        }
    }

    // -- Incremental-scan phase ---------------------------------------------
    println!("\n== bench_suite: full vs incremental scans on a ramping campaign ==\n");
    let policy = IncrementalPolicy::default();
    let mut inc_infos = Vec::new();
    let mut inc_cells = Vec::new();
    let mut inc_speedups = Vec::new();
    for which in [JdDataset::Jd1, JdDataset::Jd3] {
        let scenario = build_ramp(which, scale);
        let last = scenario.snapshots.last().expect("at least the base epoch");
        let ratio = incremental_ratio(last.graph.num_users());
        println!(
            "{}: {} users, {} merchants, {} edges at the final epoch ({} epochs, ratio {:.4})",
            dataset_tag(which),
            last.graph.num_users(),
            last.graph.num_merchants(),
            last.graph.num_edges(),
            scenario.snapshots.len(),
            ratio,
        );
        inc_infos.push(DatasetInfo {
            name: dataset_tag(which),
            users: last.graph.num_users(),
            merchants: last.graph.num_merchants(),
            edges: last.graph.num_edges(),
        });
        print!("equivalence gate (incremental vs full) ... ");
        if let Err(e) = incremental_gate(&scenario, ratio, &policy) {
            println!("FAILED");
            eprintln!(
                "incremental equivalence gate failed on {}: {e}",
                dataset_tag(which)
            );
            std::process::exit(1);
        }
        println!("ok");

        let timings = time_incremental_pair(&scenario, ratio, &policy, warmup, reps);
        let mut reuse_ratios = Vec::new();
        let (mut n_incremental, mut n_fallback) = (0usize, 0usize);
        for (e, (stats, transactions)) in timings.reuse.iter().enumerate() {
            let mut ratios: Vec<f64> = timings.full[e]
                .iter()
                .zip(&timings.incremental[e])
                .map(|(f, i)| f / i.max(1e-12))
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            let ratio = median(&ratios);
            if stats.incremental {
                n_incremental += 1;
                reuse_ratios.push(ratio);
            } else {
                n_fallback += 1;
            }
            let sorted = |times: &[f64]| {
                let mut t = times.to_vec();
                t.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
                t
            };
            let (full_sorted, inc_sorted) =
                (sorted(&timings.full[e]), sorted(&timings.incremental[e]));
            let snapshot = &scenario.snapshots[e];
            println!(
                "epoch {:<2} {:<4} full {:>8.3} ms  incremental {:>8.3} ms ({:.2}x)  \
                 {:>2}/{:<2} reused  delta {:>4} nodes ({:.1}%){}",
                snapshot.epoch,
                dataset_tag(which),
                median(&full_sorted) * 1e3,
                median(&inc_sorted) * 1e3,
                ratio,
                stats.samples_reused,
                ENSEMBLE_SAMPLES,
                stats.delta_touched_nodes,
                stats.delta_touched_fraction * 100.0,
                match stats.fallback {
                    Some(r) => format!("  [{}]", r.name()),
                    None => String::new(),
                },
            );
            inc_cells.push(IncrementalCell {
                dataset: dataset_tag(which),
                epoch: snapshot.epoch,
                transactions: *transactions,
                mode: if stats.incremental { "incremental" } else { "full" },
                fallback: stats.fallback.map(|r| r.name()),
                samples_reused: stats.samples_reused,
                samples_repeeled: stats.samples_repeeled,
                delta_touched_nodes: stats.delta_touched_nodes,
                delta_touched_fraction: stats.delta_touched_fraction,
                reps,
                full_median_s: median(&full_sorted),
                incremental_median_s: median(&inc_sorted),
                full_over_incremental: ratio,
            });
        }
        reuse_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let overall = if reuse_ratios.is_empty() { 1.0 } else { median(&reuse_ratios) };
        println!(
            "{}: incremental speedup {:.2}x over {} reuse epochs ({} fallback)",
            dataset_tag(which),
            overall,
            n_incremental,
            n_fallback,
        );
        inc_speedups.push(IncrementalSpeedup {
            dataset: dataset_tag(which),
            sample_ratio: ratio,
            full_over_incremental: overall,
            epochs_incremental: n_incremental,
            epochs_fallback: n_fallback,
        });
    }
    let incremental_artifact = IncrementalArtifact {
        schema: "ensemfdet-incremental-scan/v1",
        smoke,
        scale,
        warmup,
        reps,
        ensemble_samples: ENSEMBLE_SAMPLES,
        sample_target_users: SAMPLE_TARGET_USERS,
        ramp_epochs: RAMP_EPOCHS,
        max_touched_fraction: policy.max_touched_fraction,
        equivalence: "votes and flagged set bit-identical per epoch",
        datasets: inc_infos,
        cells: inc_cells,
        speedups: inc_speedups,
    };
    match ensemfdet_eval::write_json(&incremental_artifact, &out_incremental) {
        Ok(()) => println!("\n[saved {out_incremental}]"),
        Err(e) => {
            eprintln!("cannot write {out_incremental}: {e}");
            std::process::exit(1);
        }
    }

    // -- Full-scale phase ---------------------------------------------------
    let scale_divisor = if smoke { scale } else { SCALE_DIVISOR };
    let workers = scale_workers();
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\n== bench_suite: full-JD-scale sharded build + parallel ensemble \
         (jd3 at 1/{scale_divisor}, {workers} workers, {available} cores) ==\n"
    );
    let ds = datasets::load(JdDataset::Jd3, scale_divisor);
    let g = &ds.graph;
    println!(
        "jd3: {} users, {} merchants, {} edges",
        g.num_users(),
        g.num_merchants(),
        g.num_edges()
    );
    print!("equivalence gate (sharded build / worker pool / ingest parsers) ... ");
    if let Err(e) = scale_equivalence_gate(g, workers) {
        println!("FAILED");
        eprintln!("full-scale equivalence gate failed: {e}");
        std::process::exit(1);
    }
    println!("ok\n");

    let mut scale_cells = Vec::new();
    let mut scale_speedups = Vec::new();
    let sharded_name = format!("sharded_w{workers}");
    {
        let mut seq_view = CsrView::new();
        let mut shard_view = CsrView::new();
        let (base, var) = time_variant_pair(
            warmup,
            reps,
            || {
                seq_view.rebuild(g, None);
                std::hint::black_box(seq_view.num_edges());
            },
            || {
                shard_view.rebuild_sharded(g, workers);
                std::hint::black_box(shard_view.num_edges());
            },
        );
        summarize_scale_pair(
            "csr_build",
            ["sequential", &sharded_name],
            base,
            var,
            reps,
            &mut scale_cells,
            &mut scale_speedups,
        );
    }
    let workers_name = format!("workers_{workers}");
    for ratio in SCALE_RATIOS {
        let cfg = EnsemFdetConfig {
            num_samples: ENSEMBLE_SAMPLES,
            sample_ratio: ratio,
            seed: ENSEMBLE_SEED,
            ..Default::default()
        };
        let (base, var) = time_variant_pair(
            warmup,
            reps,
            || {
                std::hint::black_box(
                    EnsemFdet::with_workers(cfg, 1).detect(g).votes.max_user_votes(),
                );
            },
            || {
                std::hint::black_box(
                    EnsemFdet::with_workers(cfg, workers).detect(g).votes.max_user_votes(),
                );
            },
        );
        summarize_scale_pair(
            &format!("ensemble_s{ratio:.2}"),
            ["workers_1", &workers_name],
            base,
            var,
            reps,
            &mut scale_cells,
            &mut scale_speedups,
        );
    }
    // The mask path's allocator-contention win: under the worker pool,
    // materialize builds every sample as its own compacted subgraph —
    // N threads hammering the global allocator — while mask threads only
    // write selection vectors over the shared parent CSR.
    {
        let cfg_of = |path| EnsemFdetConfig {
            num_samples: ENSEMBLE_SAMPLES,
            sample_ratio: SCALE_RATIOS[1],
            path,
            seed: ENSEMBLE_SEED,
            ..Default::default()
        };
        let (base, var) = time_variant_pair(
            warmup,
            reps,
            || {
                std::hint::black_box(
                    EnsemFdet::with_workers(cfg_of(SamplePath::Materialize), workers)
                        .detect(g)
                        .votes
                        .max_user_votes(),
                );
            },
            || {
                std::hint::black_box(
                    EnsemFdet::with_workers(cfg_of(SamplePath::Mask), workers)
                        .detect(g)
                        .votes
                        .max_user_votes(),
                );
            },
        );
        summarize_scale_pair(
            &format!("pool_path_s{:.2}", SCALE_RATIOS[1]),
            [&format!("materialize_w{workers}"), &format!("mask_w{workers}")],
            base,
            var,
            reps,
            &mut scale_cells,
            &mut scale_speedups,
        );
    }
    let ingest_records = if smoke { INGEST_RECORDS_SMOKE } else { INGEST_RECORDS };
    let records: Vec<(String, String)> = (0..ingest_records)
        .map(|i| (format!("user-{i}"), format!("store-{}", i % 9973)))
        .collect();
    let (json_body, ndjson_body) = ingest_bodies(&records);
    {
        let (base, var) = time_variant_pair(
            warmup,
            reps,
            || {
                std::hint::black_box(parse_json_records(&json_body).expect("gated").len());
            },
            || {
                std::hint::black_box(parse_ndjson_records(&ndjson_body).expect("gated").len());
            },
        );
        summarize_scale_pair(
            "ingest_parse",
            ["json_array", "ndjson"],
            base,
            var,
            reps,
            &mut scale_cells,
            &mut scale_speedups,
        );
    }
    let scale_artifact = ScaleArtifact {
        schema: "ensemfdet-full-scale/v1",
        smoke,
        scale: scale_divisor,
        warmup,
        reps,
        ensemble_samples: ENSEMBLE_SAMPLES,
        workers,
        available_parallelism: available,
        ingest_records,
        ingest_json_bytes: json_body.len(),
        ingest_ndjson_bytes: ndjson_body.len(),
        equivalence: "sharded build and worker pool bit-identical; ingest parsers agree",
        dataset: DatasetInfo {
            name: "jd3",
            users: g.num_users(),
            merchants: g.num_merchants(),
            edges: g.num_edges(),
        },
        cells: scale_cells,
        speedups: scale_speedups,
    };
    match ensemfdet_eval::write_json(&scale_artifact, &out_scale) {
        Ok(()) => println!("\n[saved {out_scale}]"),
        Err(e) => {
            eprintln!("cannot write {out_scale}: {e}");
            std::process::exit(1);
        }
    }

    // -- Hybrid-scoring phase -----------------------------------------------
    println!(
        "\n== bench_suite: camouflage ablation — single methods vs calibrated hybrid \
         (jd1 at 1/{scale}) ==\n"
    );
    print!("equivalence gate (detector registry / fusion corners) ... ");
    if let Err(e) = hybrid_equivalence_gate(&suite[0].1.graph) {
        println!("FAILED");
        eprintln!("hybrid equivalence gate failed: {e}");
        std::process::exit(1);
    }
    println!("ok\n");

    let mut hybrid_cells = Vec::new();
    let mut hybrid_levels = Vec::new();
    let mut violations = Vec::new();
    for camo in CAMO_LEVELS {
        let mut cfg = jd_preset(JdDataset::Jd1, scale, 0xCA30);
        for gcfg in &mut cfg.fraud_groups {
            gcfg.camouflage_per_user = camo;
        }
        let ds = generate(&cfg);
        let labels = ds.labels();
        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: HYBRID_SAMPLES,
                sample_ratio: HYBRID_RATIO,
                seed: HYBRID_SEED,
                ..Default::default()
            },
        );

        let mut singles: Vec<(String, f64, f64)> = Vec::new();
        let vote_curve = methods::ensemfdet_curve(&outcome, &labels);
        singles.push(("ensemfdet".into(), vote_curve.best_f1(), vote_curve.auc_pr()));
        for (name, curve) in methods::detector_curves(&ds.graph, &labels) {
            singles.push((name.into(), curve.best_f1(), curve.auc_pr()));
        }
        let (cal, hybrid) =
            methods::hybrid_curve(&ds.graph, &outcome, &labels, &ScoringConfig::enabled());
        let (hybrid_f1, hybrid_auc) = (hybrid.best_f1(), hybrid.auc_pr());

        let (mut best_name, mut best_single) = (String::new(), f64::NEG_INFINITY);
        for (name, f1, auc) in &singles {
            hybrid_cells.push(HybridCell {
                camouflage_per_user: camo,
                method: name.clone(),
                best_f1: *f1,
                auc_pr: *auc,
            });
            if *f1 > best_single {
                best_single = *f1;
                best_name = name.clone();
            }
            if hybrid_f1 + HYBRID_EPS < *f1 {
                violations.push(format!(
                    "camo {camo}: hybrid best F1 {hybrid_f1:.4} below {name} {f1:.4}"
                ));
            }
        }
        hybrid_cells.push(HybridCell {
            camouflage_per_user: camo,
            method: "hybrid".into(),
            best_f1: hybrid_f1,
            auc_pr: hybrid_auc,
        });
        let weights = cal.config.weights();
        println!(
            "camo {:<2} hybrid F1 {:.3} (weights {:.1}/{:.1}/{:.1})  best single: {} {:.3}  \
             margin {:+.3}",
            camo,
            hybrid_f1,
            weights[0],
            weights[1],
            weights[2],
            best_name,
            best_single,
            hybrid_f1 - best_single,
        );
        hybrid_levels.push(HybridLevel {
            camouflage_per_user: camo,
            hybrid_best_f1: hybrid_f1,
            hybrid_auc_pr: hybrid_auc,
            calibrated_weights: weights,
            best_single_method: best_name,
            best_single_f1: best_single,
            margin: hybrid_f1 - best_single,
        });
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("hybrid dominance violated — {v}");
        }
        std::process::exit(1);
    }
    println!("\nhybrid at-or-above every single method at every camouflage level");

    let hybrid_artifact = HybridArtifact {
        schema: "ensemfdet-hybrid-scoring/v1",
        smoke,
        scale,
        ensemble_samples: HYBRID_SAMPLES,
        sample_ratio: HYBRID_RATIO,
        camouflage_levels: CAMO_LEVELS.to_vec(),
        equivalence: "detector adapters rank-identical to bespoke entry points; \
                      fusion corners reproduce component rankings",
        dominance: "hybrid best F1 >= every single method at every camouflage level",
        cells: hybrid_cells,
        levels: hybrid_levels,
    };
    match ensemfdet_eval::write_json(&hybrid_artifact, &out_hybrid) {
        Ok(()) => println!("\n[saved {out_hybrid}]"),
        Err(e) => {
            eprintln!("cannot write {out_hybrid}: {e}");
            std::process::exit(1);
        }
    }

    // -- Parallel bulk-ingest phase -----------------------------------------
    println!(
        "\n== bench_suite: arena interners + chunked weighted CSV loading \
         (jd3 at 1/{scale_divisor}, {workers} workers) ==\n"
    );
    let log_cfg = TransactionLogConfig {
        seed: ENSEMBLE_SEED,
        ..Default::default()
    };
    let (log, log_summary) = transaction_log_string(&ds, &log_cfg);
    let log_bytes = log.into_bytes();
    println!(
        "log: {} records over {} distinct (user, merchant) pairs, {:.1} MiB",
        log_summary.records,
        log_summary.distinct_pairs,
        log_bytes.len() as f64 / (1024.0 * 1024.0),
    );
    print!("equivalence gate (loader worker counts / interner ids / votes) ... ");
    let serial_load = match ingest_equivalence_gate(&log_bytes, workers) {
        Ok(l) => l,
        Err(e) => {
            println!("FAILED");
            eprintln!("ingest equivalence gate failed: {e}");
            std::process::exit(1);
        }
    };
    println!("ok\n");

    let mut ingest_cells = Vec::new();
    let mut ingest_speedups = Vec::new();

    // Interner comparison on pre-parsed key pairs: the legacy twin-map
    // interner vs the contiguous arena vs the sharded arena, the latter
    // both single-threaded (its routing overhead) and across the worker
    // pool (the contention-free concurrent path).
    let pairs = parse_log_pairs(&log_bytes).expect("gated");
    {
        let mut legacy = || {
            let mut i = TransactionInterner::new();
            for (u, m) in &pairs {
                i.user(u);
                i.merchant(m);
            }
            std::hint::black_box(i.num_users());
        };
        let mut arena = || {
            let mut i = ArenaTransactionInterner::new();
            for (u, m) in &pairs {
                i.user(u);
                i.merchant(m);
            }
            std::hint::black_box(i.num_users());
        };
        let mut sharded_one = || {
            let i = ConcurrentTransactionInterner::new();
            for (u, m) in &pairs {
                i.user(u);
                i.merchant(m);
            }
            std::hint::black_box(i.num_users());
        };
        let mut sharded_pool = || {
            let i = ConcurrentTransactionInterner::new();
            std::thread::scope(|scope| {
                for shard in pairs.chunks(pairs.len().div_ceil(workers)) {
                    let i = &i;
                    scope.spawn(move || {
                        for (u, m) in shard {
                            i.user(u);
                            i.merchant(m);
                        }
                    });
                }
            });
            std::hint::black_box(i.num_users());
        };
        let (times, alloc) = time_ingest_variants(
            warmup,
            reps,
            &mut [&mut legacy, &mut arena, &mut sharded_one, &mut sharded_pool],
        );
        let names = vec![
            "legacy".to_string(),
            "arena".to_string(),
            "sharded_w1".to_string(),
            format!("sharded_w{workers}"),
        ];
        summarize_ingest_variants(
            "intern",
            &names,
            &times,
            &alloc,
            pairs.len(),
            reps,
            &mut ingest_cells,
            &mut ingest_speedups,
        );
    }

    // The chunked loader end to end (split → parse → merge → weighted
    // graph), serial vs every swept worker count.
    {
        let counts = ingest_worker_counts(workers);
        let mut fns: Vec<Box<dyn FnMut()>> = counts
            .iter()
            .map(|&w| {
                let log_bytes = &log_bytes;
                Box::new(move || {
                    let l = load_transactions(
                        log_bytes,
                        &LoadOptions {
                            workers: w,
                            ..Default::default()
                        },
                    )
                    .expect("gated");
                    std::hint::black_box(l.graph.num_edges());
                }) as Box<dyn FnMut()>
            })
            .collect();
        let mut refs: Vec<&mut dyn FnMut()> =
            fns.iter_mut().map(|b| b.as_mut() as &mut dyn FnMut()).collect();
        let (times, alloc) = time_ingest_variants(warmup, reps, &mut refs);
        let names: Vec<String> = counts
            .iter()
            .map(|&w| if w == 1 { "serial".to_string() } else { format!("workers_{w}") })
            .collect();
        summarize_ingest_variants(
            "load_csv",
            &names,
            &times,
            &alloc,
            log_summary.records,
            reps,
            &mut ingest_cells,
            &mut ingest_speedups,
        );
    }

    let ingest_artifact = IngestArtifact {
        schema: "ensemfdet-parallel-ingest/v1",
        smoke,
        scale: scale_divisor,
        warmup,
        reps,
        workers,
        available_parallelism: available,
        records: log_summary.records,
        distinct_pairs: log_summary.distinct_pairs,
        log_bytes: log_bytes.len(),
        equivalence: "ids, weights (f64 bits), and votes bit-identical for every \
                      worker count; sharded interner id-identical to serial",
        dataset: DatasetInfo {
            name: "jd3",
            users: serial_load.graph.num_users(),
            merchants: serial_load.graph.num_merchants(),
            edges: serial_load.graph.num_edges(),
        },
        cells: ingest_cells,
        speedups: ingest_speedups,
    };
    match ensemfdet_eval::write_json(&ingest_artifact, &out_ingest) {
        Ok(()) => println!("\n[saved {out_ingest}]"),
        Err(e) => {
            eprintln!("cannot write {out_ingest}: {e}");
            std::process::exit(1);
        }
    }
}
