//! **Table III** — running time of EnsemFDet vs Fraudar on all three
//! datasets (`S = 0.1`, `N = 80` for EnsemFDet; fixed `k = 30` for
//! Fraudar).
//!
//! The paper's theory: `Time(EnsemFDet) < S × Time(Fraudar)` *per core*;
//! with enough cores the ensemble additionally overlaps its `N` samples.
//! This harness reports both the measured wall-clock on this machine and
//! the ideal-parallel projection `Σ sample time / max sample time`.

use ensemfdet::EnsemFdetConfig;
use ensemfdet_baselines::{Fraudar, FraudarConfig};
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_eval::{time_it, timing::seconds, Table};
use serde::Serialize;

#[derive(Serialize)]
struct TimingRow {
    dataset: String,
    edges: usize,
    ensemfdet_wall_s: f64,
    ensemfdet_ideal_parallel_s: f64,
    fraudar_wall_s: f64,
    speedup_wall: f64,
    speedup_ideal: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!(
        "== Table III: time consumption, EnsemFDet (S=0.1, N=80) vs Fraudar (k=30), 1/{scale} ==\n"
    );
    println!(
        "note: this sandbox has {} CPU core(s); the ensemble's parallel\n\
         speedup leg needs cores, so the ideal-parallel column projects it.\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let mut table = Table::new(&[
        "Dataset",
        "EnsemFDet (wall)",
        "EnsemFDet (ideal ∥)",
        "FRAUDAR",
        "speedup (wall)",
        "speedup (ideal ∥)",
    ]);
    let mut rows = Vec::new();
    for (which, ds) in datasets::load_all(scale) {
        let (outcome, ens_time) = time_it(|| {
            methods::run_ensemfdet(
                &ds.graph,
                EnsemFdetConfig {
                    num_samples: 80,
                    sample_ratio: 0.1,
                    seed: 0x7AB3,
                    ..Default::default()
                },
            )
        });
        // Ideal parallel: all 80 samples overlap; the critical path is the
        // slowest sample (+ the serial vote merge, which is negligible).
        let ideal = outcome.max_sample_time();
        let (_, fra_time) = time_it(|| {
            Fraudar::new(FraudarConfig {
                k: 30,
                ..Default::default()
            })
            .run(&ds.graph)
        });

        let speedup_wall = fra_time.as_secs_f64() / ens_time.as_secs_f64().max(1e-12);
        let speedup_ideal = fra_time.as_secs_f64() / ideal.as_secs_f64().max(1e-12);
        table.row(&[
            which.name().to_string(),
            seconds(ens_time),
            seconds(ideal),
            seconds(fra_time),
            format!("{speedup_wall:.1}x"),
            format!("{speedup_ideal:.1}x"),
        ]);
        rows.push(TimingRow {
            dataset: which.name().to_string(),
            edges: ds.graph.num_edges(),
            ensemfdet_wall_s: ens_time.as_secs_f64(),
            ensemfdet_ideal_parallel_s: ideal.as_secs_f64(),
            fraudar_wall_s: fra_time.as_secs_f64(),
            speedup_wall,
            speedup_ideal,
        });
    }
    println!("{}", table.render());
    println!(
        "(paper: 10x wall speedup at S = 0.1 on a multicore box, up to 100x\n\
         at S = 0.01; theory Time(EnsemFDet) < S · Time(Fraudar) per core)"
    );
    output::save("table3_timing", &rows);
}
