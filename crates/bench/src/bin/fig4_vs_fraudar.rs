//! **Figure 4 (a–f)** — F1 and Precision against the number of detected
//! PINs, EnsemFDet vs Fraudar, on all three datasets.
//!
//! The paper's practicality argument: EnsemFDet's detection count moves
//! almost continuously with `T`, so any operating size is reachable;
//! Fraudar jumps in coarse, uncontrollable steps (thousands of nodes per
//! block).

use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_eval::Table;
use serde::Serialize;

#[derive(Serialize)]
struct SeriesPoint {
    detected: usize,
    precision: f64,
    f1: f64,
}

#[derive(Serialize)]
struct DatasetSeries {
    dataset: String,
    ensemfdet: Vec<SeriesPoint>,
    fraudar: Vec<SeriesPoint>,
    max_step_ensemfdet: usize,
    max_step_fraudar: usize,
}

fn steps(points: &[SeriesPoint]) -> usize {
    let mut sizes: Vec<usize> = points.iter().map(|p| p.detected).collect();
    sizes.sort_unstable();
    sizes
        .windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!("== Figure 4: EnsemFDet vs Fraudar by number of detected PINs (1/{scale}) ==");

    let mut all = Vec::new();
    for (which, ds) in datasets::load_all(scale) {
        let labels = ds.labels();
        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: 80,
                sample_ratio: 0.1,
                seed: 0xF164,
                ..Default::default()
            },
        );
        let ens = methods::ensemfdet_curve(&outcome, &labels);
        let fra = methods::fraudar_curve(&ds.graph, &labels, 30);

        let to_series = |c: &ensemfdet_eval::PrCurve| {
            c.points
                .iter()
                .map(|p| SeriesPoint {
                    detected: p.detected,
                    precision: p.precision,
                    f1: p.f1,
                })
                .collect::<Vec<_>>()
        };
        let e = to_series(&ens);
        let f = to_series(&fra);
        let (se, sf) = (steps(&e), steps(&f));

        println!("\n-- {} --", which.name());
        let mut table = Table::new(&["method", "operating points", "max detection-size jump"]);
        table.row(&["EnsemFDet".into(), e.len().to_string(), se.to_string()]);
        table.row(&["Fraudar".into(), f.len().to_string(), sf.to_string()]);
        println!("{}", table.render());

        println!("EnsemFDet (T sweep):  detected → F1/Precision");
        for p in e.iter().step_by((e.len() / 8).max(1)) {
            println!("  {:>7}  F1 {:.3}  P {:.3}", p.detected, p.f1, p.precision);
        }
        println!("Fraudar (k sweep, diamond points):");
        for p in f.iter().step_by((f.len() / 8).max(1)) {
            println!("  {:>7}  F1 {:.3}  P {:.3}", p.detected, p.f1, p.precision);
        }

        all.push(DatasetSeries {
            dataset: which.name().to_string(),
            ensemfdet: e,
            fraudar: f,
            max_step_ensemfdet: se,
            max_step_fraudar: sf,
        });
    }

    println!(
        "\n(paper shape: comparable F1 envelopes, but Fraudar's detection\n\
         sizes jump by whole blocks — 'a huge span is unacceptable in the\n\
         business' — while EnsemFDet's T sweep covers sizes almost\n\
         continuously)"
    );
    output::save("fig4_vs_fraudar", &all);
}
