//! **Figure 1** — density score `φ` of each detected block, one curve per
//! sampled graph.
//!
//! The paper plots these curves to justify the truncating point: every
//! sampled graph's curve is (near-)monotonically decreasing and collapses
//! to a common low plateau after the meaningful blocks, so the Δ² elbow is
//! well defined.

use ensemfdet::fdet::{fdet, Truncation};
use ensemfdet::metric::MetricKind;
use ensemfdet::truncate::truncation_point;
use ensemfdet_bench::{datasets, output, resolve_scale};
use ensemfdet_datagen::presets::JdDataset;
use ensemfdet_eval::Table;
use ensemfdet_sampling::{seed, Sampler, SamplingMethod};
use serde::Serialize;

#[derive(Serialize)]
struct SampleCurve {
    sample: usize,
    scores: Vec<f64>,
    k_hat: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    const N: usize = 8;
    const S: f64 = 0.1;
    const K_MAX: usize = 16;
    println!(
        "== Figure 1: scores of detected blocks (Dataset #3 at 1/{scale}, RES, S = {S}, {N} samples) ==\n"
    );

    let ds = datasets::load(JdDataset::Jd3, scale);
    let mut curves = Vec::new();
    for i in 0..N {
        let sample = SamplingMethod::RandomEdge.sample(&ds.graph, S, seed::derive(0xF161, i as u64));
        let result = fdet(
            &sample.graph,
            &MetricKind::default(),
            Truncation::KeepAll { k_max: K_MAX },
        );
        let k_hat = truncation_point(&result.scores);
        curves.push(SampleCurve {
            sample: i,
            scores: result.scores,
            k_hat,
        });
    }

    let max_len = curves.iter().map(|c| c.scores.len()).max().unwrap_or(0);
    let mut header: Vec<String> = vec!["block".into()];
    header.extend((0..N).map(|i| format!("sample {i}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    for b in 0..max_len {
        let mut row = vec![(b + 1).to_string()];
        for c in &curves {
            row.push(
                c.scores
                    .get(b)
                    .map(|s| format!("{s:.3}"))
                    .unwrap_or_default(),
            );
        }
        table.row(&row);
    }
    println!("{}", table.render());
    println!(
        "truncating points k̂ per sample: {:?}",
        curves.iter().map(|c| c.k_hat).collect::<Vec<_>>()
    );
    println!(
        "(paper: all curves decrease monotonically and flatten after the\n\
         elbow — detected blocks past k̂ are meaningless)"
    );
    output::save("fig1_block_scores", &curves);
}
