//! Runs every experiment binary in paper order, forwarding `--scale`.
//!
//! ```text
//! cargo run --release -p ensemfdet-bench --bin run_all [-- --scale 40]
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1_datasets",
    "fig1_block_scores",
    "fig3_method_comparison",
    "fig4_vs_fraudar",
    "table3_timing",
    "fig5_sampling_methods",
    "fig6_truncation",
    "fig7_impact_n",
    "fig8_impact_s",
    "fig9_impact_t",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n════════════════════════════════════════════════════════");
        println!("  {name}");
        println!("════════════════════════════════════════════════════════");
        let status = Command::new(exe_dir.join(name))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("experiment {name} FAILED: {status}");
            failures.push(*name);
        }
    }
    // Figures, if the viz renderer was built alongside (best-effort).
    let renderer = exe_dir.join("render_figures");
    if renderer.exists() {
        println!("\n════════════════════════════════════════════════════════");
        println!("  render_figures");
        println!("════════════════════════════════════════════════════════");
        let _ = Command::new(renderer).status();
    }

    if failures.is_empty() {
        println!("\nall {} experiments completed; JSON in results/", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
