//! **Figure 6** — automatic truncating point vs fixed `k = 30`.
//!
//! Expected shape (paper): auto-truncation matches or beats fixed-k in
//! precision at every recall it reaches (fix-k's extra blocks are noise:
//! precision decays toward random selection), and peels far fewer blocks
//! (all recorded `k̂ < 15`), cutting time.

use ensemfdet::fdet::Truncation;
use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_datagen::presets::JdDataset;
use ensemfdet_eval::{time_it, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Variant {
    name: String,
    wall_s: f64,
    avg_blocks_peeled: f64,
    avg_k_hat: f64,
    best_f1: f64,
    auc_pr: f64,
    points: Vec<ensemfdet_eval::PrPoint>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!("== Figure 6: auto-truncation vs fixed k = 30 (Dataset #3 at 1/{scale}) ==\n");

    let ds = datasets::load(JdDataset::Jd3, scale);
    let labels = ds.labels();

    let variants: [(&str, Truncation); 2] = [
        (
            "Auto_truncating_K",
            Truncation::Auto {
                k_max: 50,
                patience: 5,
            },
        ),
        ("K=30", Truncation::FixedK(30)),
    ];

    let mut table = Table::new(&["variant", "time", "avg blocks", "avg k̂", "best F1", "AUC-PR"]);
    let mut out = Vec::new();
    for (name, truncation) in variants {
        let (outcome, wall) = time_it(|| {
            methods::run_ensemfdet(
                &ds.graph,
                EnsemFdetConfig {
                    num_samples: 80,
                    sample_ratio: 0.1,
                    truncation,
                    seed: 0xF166,
                    ..Default::default()
                },
            )
        });
        let curve = methods::ensemfdet_curve(&outcome, &labels);
        let avg_blocks = outcome
            .samples
            .iter()
            .map(|s| s.blocks_peeled as f64)
            .sum::<f64>()
            / outcome.samples.len() as f64;
        let avg_k_hat = outcome
            .samples
            .iter()
            .map(|s| s.k_hat as f64)
            .sum::<f64>()
            / outcome.samples.len() as f64;
        table.row(&[
            name.to_string(),
            format!("{:.3} s", wall.as_secs_f64()),
            format!("{avg_blocks:.1}"),
            format!("{avg_k_hat:.1}"),
            format!("{:.3}", curve.best_f1()),
            format!("{:.3}", curve.auc_pr()),
        ]);
        out.push(Variant {
            name: name.to_string(),
            wall_s: wall.as_secs_f64(),
            avg_blocks_peeled: avg_blocks,
            avg_k_hat,
            best_f1: curve.best_f1(),
            auc_pr: curve.auc_pr(),
            points: curve.points,
        });
    }
    println!("{}", table.render());
    println!(
        "(paper: every recorded k̂ < 15; fixed k = 30's extra recall comes\n\
         at precision near random selection, and auto-truncation detects\n\
         less than half as many blocks, cutting time)"
    );
    output::save("fig6_truncation", &out);
}
