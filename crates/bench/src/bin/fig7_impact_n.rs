//! **Figure 7 (a–d)** — impact of the ensemble size `N ∈ {10, 20, 40, 80}`
//! at fixed `S = 0.1` on Dataset #3.
//!
//! Comparisons are made at matched *numbers of detected nodes* (the paper's
//! x-axis), because the same `T` means different vote totals under
//! different `N`. Expected shape: mild, saturating improvement with `N` —
//! negligible from 40 to 80 — and overall stability.

use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_datagen::presets::JdDataset;
use ensemfdet_eval::Table;
use serde::Serialize;

#[derive(Serialize)]
struct NSeries {
    n: usize,
    best_f1: f64,
    auc_pr: f64,
    points: Vec<ensemfdet_eval::PrPoint>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!("== Figure 7: impact of N at S = 0.1 (Dataset #3 at 1/{scale}) ==\n");

    let ds = datasets::load(JdDataset::Jd3, scale);
    let labels = ds.labels();

    let mut out = Vec::new();
    for n in [10usize, 20, 40, 80] {
        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: n,
                sample_ratio: 0.1,
                seed: 0xF167,
                ..Default::default()
            },
        );
        let curve = methods::ensemfdet_curve(&outcome, &labels);
        out.push(NSeries {
            n,
            best_f1: curve.best_f1(),
            auc_pr: curve.auc_pr(),
            points: curve.points,
        });
    }

    let mut table = Table::new(&["N", "best F1", "AUC-PR", "F1@~5%det", "F1@~10%det"]);
    let total = ds.graph.num_users();
    for s in &out {
        let f1_at = |frac: f64| {
            let target = (frac * total as f64) as usize;
            s.points
                .iter()
                .min_by_key(|p| p.detected.abs_diff(target))
                .map(|p| format!("{:.3}", p.f1))
                .unwrap_or_default()
        };
        table.row(&[
            s.n.to_string(),
            format!("{:.3}", s.best_f1),
            format!("{:.3}", s.auc_pr),
            f1_at(0.05),
            f1_at(0.10),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(paper: performance rises with N but the N = 40 → 80 gain is\n\
         negligible — stability across R = S·N ∈ [1, 8] means the method\n\
         tolerates scarce parallel cores)"
    );
    output::save("fig7_impact_n", &out);
}
