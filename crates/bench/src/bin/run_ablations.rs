//! Runs the beyond-the-paper ablation experiments in sequence, forwarding
//! `--scale`.
//!
//! ```text
//! cargo run --release -p ensemfdet-bench --bin run_ablations [-- --scale 40]
//! ```

use std::process::Command;

const ABLATIONS: &[&str] = &[
    "ablation_camouflage",
    "ablation_stability",
    "ablation_periods",
    "ablation_communities",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();

    let mut failures = Vec::new();
    for name in ABLATIONS {
        println!("\n════════════════════════════════════════════════════════");
        println!("  {name}");
        println!("════════════════════════════════════════════════════════");
        let status = Command::new(exe_dir.join(name))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("ablation {name} FAILED: {status}");
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} ablations completed; JSON in results/", ABLATIONS.len());
    } else {
        eprintln!("\nFAILED ablations: {failures:?}");
        std::process::exit(1);
    }
}
