//! **Ablation (beyond the paper)** — false-positive pressure from honest
//! community structure.
//!
//! Real shoppers cluster (region, interest); legitimate communities are
//! mildly dense bipartite regions that every dense-subgraph detector can
//! mistake for rings. This experiment turns the generator's community knob
//! and reports, for each detector, per-account best F1 **and group-level
//! recall at best F1** (fraction of rings with ≥50% of members caught —
//! what a risk-control team actually acts on).

use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{methods, output, resolve_scale};
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::generate;
use ensemfdet_eval::{group_recall, Table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    communities: usize,
    method: String,
    best_f1: f64,
    group_recall_at_best_f1: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!(
        "== Ablation: honest community structure (Dataset #1 at 1/{scale}) ==\n"
    );

    let mut rows = Vec::new();
    let mut table = Table::new(&["communities", "method", "best F1", "group recall@bestF1"]);
    for communities in [0usize, 8, 32] {
        let mut cfg = jd_preset(JdDataset::Jd1, scale, 0xC0_33);
        cfg.honest_communities = communities;
        cfg.community_affinity = 0.8;
        let ds = generate(&cfg);
        let labels = ds.labels();
        let groups: Vec<Vec<u32>> = ds.groups.iter().map(|g| g.users.clone()).collect();

        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: 40,
                sample_ratio: 0.1,
                seed: 0xC0_34,
                ..Default::default()
            },
        );
        let ens = methods::ensemfdet_curve(&outcome, &labels);
        let fra = methods::fraudar_curve(&ds.graph, &labels, 30);

        for (name, curve) in [("EnsemFDet", &ens), ("Fraudar", &fra)] {
            // Group recall at the best-F1 operating point.
            let gr = curve
                .best_point()
                .map(|best| {
                    let detected: Vec<u32> = if name == "EnsemFDet" {
                        outcome
                            .votes
                            .detected_users(best.threshold as u32)
                            .into_iter()
                            .map(|u| u.0)
                            .collect()
                    } else {
                        // Re-run cheaply: cumulative set after k blocks.
                        ensemfdet_baselines::Fraudar::default()
                            .run(&ds.graph)
                            .detected_users_after(best.threshold as usize)
                    };
                    group_recall(&groups, &detected, 0.5)
                })
                .unwrap_or(0.0);
            table.row(&[
                communities.to_string(),
                name.to_string(),
                format!("{:.3}", curve.best_f1()),
                format!("{gr:.3}"),
            ]);
            rows.push(Row {
                communities,
                method: name.to_string(),
                best_f1: curve.best_f1(),
                group_recall_at_best_f1: gr,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "(expected: per-account F1 erodes as legitimate communities add\n\
         false-positive pressure, but group-level recall — rings with ≥50%\n\
         of members caught — stays near 1.0: rings remain qualitatively\n\
         denser than organic communities)"
    );
    output::save("ablation_communities", &rows);
}
