//! **Figure 9 (a–d)** — impact of the voting threshold
//! `T ∈ {1, …, 40}` at `S = 0.1`, `N = 80`, on all three datasets.
//!
//! Expected shape (paper): precision rises and recall falls monotonically
//! (and smoothly) in `T`; the smooth curves are what let an operator dial
//! in a target error rate.

use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_eval::{confusion, Table};
use serde::Serialize;

#[derive(Serialize)]
struct TPoint {
    t: u32,
    detected: usize,
    precision: f64,
    recall: f64,
    f1: f64,
}

#[derive(Serialize)]
struct DatasetT {
    dataset: String,
    points: Vec<TPoint>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!("== Figure 9: impact of T (S = 0.1, N = 80), all datasets at 1/{scale} ==");

    let mut all = Vec::new();
    for (which, ds) in datasets::load_all(scale) {
        let labels = ds.labels();
        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: 80,
                sample_ratio: 0.1,
                seed: 0xF169,
                ..Default::default()
            },
        );
        let mut points = Vec::new();
        for t in 1..=40u32 {
            let detected: Vec<u32> = outcome
                .votes
                .detected_users(t)
                .into_iter()
                .map(|u| u.0)
                .collect();
            let c = confusion(&detected, &labels);
            points.push(TPoint {
                t,
                detected: c.detected(),
                precision: c.precision(),
                recall: c.recall(),
                f1: c.f1(),
            });
        }

        println!("\n-- {} --", which.name());
        let mut table = Table::new(&["T", "detected", "precision", "recall", "F1"]);
        for p in points.iter().filter(|p| p.t % 4 == 1 || p.t == 40) {
            table.row(&[
                p.t.to_string(),
                p.detected.to_string(),
                format!("{:.3}", p.precision),
                format!("{:.3}", p.recall),
                format!("{:.3}", p.f1),
            ]);
        }
        println!("{}", table.render());
        all.push(DatasetT {
            dataset: which.name().to_string(),
            points,
        });
    }

    println!(
        "(paper: precision monotone ↑, recall monotone ↓ in T on every\n\
         dataset; smooth curves ⇒ the detection size is controllable)"
    );
    output::save("fig9_impact_t", &all);
}
