//! **Ablation (beyond the paper)** — quantifying the stability claims.
//!
//! Section V-D asserts EnsemFDet is "very stable" across `N` and `S` from
//! single runs per setting. This experiment repeats each configuration over
//! 10 master seeds and reports best-F1 as mean ± std, turning the paper's
//! qualitative claim into a measured coefficient of variation.

use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_datagen::presets::JdDataset;
use ensemfdet_eval::stability::{across_seeds, Spread};
use ensemfdet_eval::Table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    s: f64,
    n: usize,
    mean_f1: f64,
    std_f1: f64,
    cv: f64,
    min_f1: f64,
    max_f1: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    const SEEDS: u64 = 10;
    println!(
        "== Ablation: best-F1 stability over {SEEDS} ensemble seeds (Dataset #1 at 1/{scale}) ==\n"
    );

    let ds = datasets::load(JdDataset::Jd1, scale);
    let labels = ds.labels();

    let mut table = Table::new(&["S", "N", "best F1 (mean ± std)", "CV", "min", "max"]);
    let mut rows = Vec::new();
    for (s, n) in [(0.1f64, 10usize), (0.1, 40), (0.1, 80), (0.05, 20), (0.2, 10)] {
        let spread: Spread = across_seeds(0..SEEDS, |seed| {
            let outcome = methods::run_ensemfdet(
                &ds.graph,
                EnsemFdetConfig {
                    num_samples: n,
                    sample_ratio: s,
                    seed: 0xAB1E ^ seed,
                    ..Default::default()
                },
            );
            methods::ensemfdet_curve(&outcome, &labels).best_f1()
        });
        table.row(&[
            s.to_string(),
            n.to_string(),
            spread.display(3),
            format!("{:.3}", spread.cv()),
            format!("{:.3}", spread.min),
            format!("{:.3}", spread.max),
        ]);
        rows.push(Row {
            s,
            n,
            mean_f1: spread.mean,
            std_f1: spread.std_dev,
            cv: spread.cv(),
            min_f1: spread.min,
            max_f1: spread.max,
        });
    }
    println!("{}", table.render());
    println!(
        "(the paper's stability claim holds if the coefficient of variation\n\
         stays small — a few percent — in every configuration, and shrinks\n\
         as N grows)"
    );
    output::save("ablation_stability", &rows);
}
