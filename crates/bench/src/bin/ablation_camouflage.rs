//! **Ablation (beyond the paper)** — why Definition 2 penalizes popular
//! merchants: detection quality under increasing camouflage, for the
//! log-weighted metric vs the un-penalized average-degree metric, under
//! both camouflage targeting strategies (random and popularity-biased,
//! after Fraudar's attack models).
//!
//! Expected: the log-weighted metric's F1 degrades gracefully as fraud
//! accounts bury their rings under camouflage purchases; the plain
//! average-degree metric collapses much faster, especially under biased
//! camouflage into the busiest merchants.

use ensemfdet::metric::{DensityMetric, MetricKind};
use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{methods, output, resolve_scale};
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate, CamouflageTargeting};
use ensemfdet_eval::Table;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    camouflage_per_user: usize,
    targeting: String,
    metric: String,
    best_f1: f64,
    auc_pr: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!("== Ablation: metric robustness under camouflage (Dataset #1 at 1/{scale}) ==\n");

    let mut cells = Vec::new();
    let mut table = Table::new(&["camo/user", "targeting", "log-weighted F1", "avg-degree F1"]);
    for targeting in [
        CamouflageTargeting::UniformRandom,
        CamouflageTargeting::PopularityBiased,
    ] {
        for camo in [0usize, 2, 6, 12] {
            let mut cfg = jd_preset(JdDataset::Jd1, scale, 0xCA30);
            for g in &mut cfg.fraud_groups {
                g.camouflage_per_user = camo;
                g.camouflage = targeting;
            }
            let ds = generate(&cfg);
            let labels = ds.labels();

            let mut f1s = Vec::new();
            for metric in [MetricKind::LogWeighted { c: 5.0 }, MetricKind::AverageDegree] {
                let outcome = methods::run_ensemfdet(
                    &ds.graph,
                    EnsemFdetConfig {
                        num_samples: 40,
                        sample_ratio: 0.1,
                        metric,
                        seed: 0xCA31,
                        ..Default::default()
                    },
                );
                let curve = methods::ensemfdet_curve(&outcome, &labels);
                f1s.push(curve.best_f1());
                cells.push(Cell {
                    camouflage_per_user: camo,
                    targeting: format!("{targeting:?}"),
                    metric: metric.name().to_string(),
                    best_f1: curve.best_f1(),
                    auc_pr: curve.auc_pr(),
                });
            }
            table.row(&[
                camo.to_string(),
                format!("{targeting:?}"),
                format!("{:.3}", f1s[0]),
                format!("{:.3}", f1s[1]),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "(expected: log-weighted ≥ average-degree at every camouflage level.\n\
         Note the un-penalized metric is not merely worse under camouflage —\n\
         it is worse even without it, because popular-merchant stars crowd\n\
         out true blocks; biased camouflage can even *raise* its F1 by\n\
         accident, by fusing fraud users into the popular hubs it chases.)"
    );
    output::save("ablation_camouflage", &cells);
}
