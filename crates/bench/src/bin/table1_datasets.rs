//! **Table I** — statistics of the three datasets.
//!
//! Prints the generated datasets' populations next to the paper's rows
//! scaled by `1/scale`, verifying the synthetic models track the real
//! datasets' shapes.

use ensemfdet_bench::{datasets, output, resolve_scale};
use ensemfdet_datagen::presets::JdDataset;
use ensemfdet_eval::Table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    users: usize,
    fraud_users: usize,
    merchants: usize,
    edges: usize,
    paper_users_scaled: usize,
    paper_fraud_scaled: usize,
    paper_merchants_scaled: usize,
    paper_edges_scaled: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!("== Table I: dataset statistics (scale 1/{scale}) ==\n");

    let mut table = Table::new(&[
        "Dataset",
        "Node:PIN",
        "Fraud PIN",
        "Node:Merchant",
        "Edge",
        "(paper scaled: PIN",
        "fraud",
        "merchant",
        "edge)",
    ]);
    let mut rows = Vec::new();
    for (which, ds) in datasets::load_all(scale) {
        let (users, fraud, merchants, edges) = ds.table1_row();
        let (pu, pf, pm, pe) = which.paper_row();
        let s = scale as usize;
        table.row(&[
            which.name().to_string(),
            users.to_string(),
            fraud.to_string(),
            merchants.to_string(),
            edges.to_string(),
            (pu / s).to_string(),
            (pf / s).to_string(),
            (pm / s).to_string(),
            (pe / s).to_string(),
        ]);
        rows.push(Row {
            dataset: which.name().to_string(),
            users,
            fraud_users: fraud,
            merchants,
            edges,
            paper_users_scaled: pu / s,
            paper_fraud_scaled: pf / s,
            paper_merchants_scaled: pm / s,
            paper_edges_scaled: pe / s,
        });
        let _ = JdDataset::ALL; // keep the import obviously used
    }
    println!("{}", table.render());
    output::save("table1_datasets", &rows);
}
