//! **Ablation (beyond the paper)** — the temporal motivation, measured.
//!
//! The introduction argues that supervised/threshold rules learned on one
//! promotion period go stale ("fraudulent accounts will not be reused …
//! features of fraud behaviors change"), while unsupervised graph methods
//! keep working. This experiment generates a 5-period campaign timeline
//! with drifting fraud behaviour (rings thin out, camouflage grows) and
//! compares, per period:
//!
//! - **EnsemFDet** with *fixed* hyperparameters (no per-period tuning);
//! - a **degree rule "learned" on period 0** — the best degree cutoff for
//!   period 0, frozen and applied to later periods (a stand-in for stale
//!   feature rules).

use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{methods, output, resolve_scale};
use ensemfdet_baselines::DegreeBaseline;
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate_timeline, BehaviorDrift, TimelineConfig};
use ensemfdet_eval::{confusion, Table};
use serde::Serialize;

#[derive(Serialize)]
struct PeriodRow {
    period: usize,
    ring_density: f64,
    ensemfdet_f1: f64,
    stale_rule_f1: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    const PERIODS: usize = 5;
    println!(
        "== Ablation: {PERIODS} drifting campaign periods (Dataset #1 base at 1/{scale}) ==\n"
    );

    let cfg = TimelineConfig {
        base: jd_preset(JdDataset::Jd1, scale, 0x7E41),
        periods: PERIODS,
        // Fraudsters spread the same campaign over thinner rings each
        // period: per-account purchase volume falls, so degree rules go
        // stale, while the *relative* density of the rings — what the graph
        // method keys on — erodes far more slowly.
        drift: BehaviorDrift {
            density_factor: 0.72,
            camouflage_step: 0,
        },
    };
    let periods = generate_timeline(&cfg);

    // "Learn" the stale rule on period 0: the degree cutoff with best F1.
    let p0 = &periods[0];
    let labels0 = p0.labels();
    let degrees0 = DegreeBaseline.score_users(&p0.graph);
    let stale_cutoff = best_degree_cutoff(&degrees0, &labels0);
    println!("degree rule learned on period 0: flag users with degree ≥ {stale_cutoff}\n");

    let mut table = Table::new(&["period", "ring density", "EnsemFDet F1", "stale degree-rule F1"]);
    let mut rows = Vec::new();
    for (p, ds) in periods.iter().enumerate() {
        let labels = ds.labels();

        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: 40,
                sample_ratio: 0.1,
                seed: 0x7E42,
                ..Default::default()
            },
        );
        let ens_f1 = methods::ensemfdet_curve(&outcome, &labels).best_f1();

        let degrees = DegreeBaseline.score_users(&ds.graph);
        let detected: Vec<u32> = degrees
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d >= stale_cutoff as f64)
            .map(|(u, _)| u as u32)
            .collect();
        let stale_f1 = confusion(&detected, &labels).f1();

        let ring_density = ds
            .groups
            .first()
            .map(|g| g.internal_edges as f64 / (g.users.len() * g.merchants.len()) as f64)
            .unwrap_or(0.0);
        table.row(&[
            p.to_string(),
            format!("{ring_density:.2}"),
            format!("{ens_f1:.3}"),
            format!("{stale_f1:.3}"),
        ]);
        rows.push(PeriodRow {
            period: p,
            ring_density,
            ensemfdet_f1: ens_f1,
            stale_rule_f1: stale_f1,
        });
    }
    println!("{}", table.render());
    println!(
        "(expected: the frozen rule's F1 decays as fraud behaviour drifts;\n\
         EnsemFDet, which learns nothing, degrades far more slowly — the\n\
         introduction's argument for unsupervised graph detection)"
    );
    output::save("ablation_periods", &rows);
}

/// Best F1 degree cutoff on a labelled period.
fn best_degree_cutoff(degrees: &[f64], labels: &[bool]) -> usize {
    let max_d = degrees.iter().cloned().fold(0.0f64, f64::max) as usize;
    let mut best = (0usize, 0.0f64);
    for cut in 1..=max_d.max(1) {
        let detected: Vec<u32> = degrees
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d >= cut as f64)
            .map(|(u, _)| u as u32)
            .collect();
        let f1 = confusion(&detected, labels).f1();
        if f1 > best.1 {
            best = (cut, f1);
        }
    }
    best.0
}
