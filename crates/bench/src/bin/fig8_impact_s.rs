//! **Figure 8 (a–d)** — impact of the sample ratio `S ∈ {0.01, 0.05, 0.1}`
//! at fixed repetition rate `R = S·N = 1` on Dataset #3.
//!
//! Expected shape (paper): larger `S` helps somewhat, but `S = 0.01` stays
//! close to `S = 0.1` — the stability that lets operators shrink samples
//! to fit memory/core budgets.

use ensemfdet::EnsemFdetConfig;
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_datagen::presets::JdDataset;
use ensemfdet_eval::Table;
use serde::Serialize;

#[derive(Serialize)]
struct SSeries {
    s: f64,
    n: usize,
    best_f1: f64,
    auc_pr: f64,
    points: Vec<ensemfdet_eval::PrPoint>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Small S compounds with the dataset's own 1/scale reduction (S = 0.01
    // of a 1/40 graph is 0.025% of the paper's data), so this experiment
    // runs on a 4x larger graph than the others to keep the S = 0.01
    // samples meaningfully sized.
    let scale = (resolve_scale(&args) / 4).max(1);
    println!("== Figure 8: impact of S at fixed R = S·N = 1 (Dataset #3 at 1/{scale}) ==\n");

    let ds = datasets::load(JdDataset::Jd3, scale);
    let labels = ds.labels();

    let mut out = Vec::new();
    for (s, n) in [(0.1f64, 10usize), (0.05, 20), (0.01, 100)] {
        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: n,
                sample_ratio: s,
                seed: 0xF168,
                ..Default::default()
            },
        );
        let curve = methods::ensemfdet_curve(&outcome, &labels);
        out.push(SSeries {
            s,
            n,
            best_f1: curve.best_f1(),
            auc_pr: curve.auc_pr(),
            points: curve.points,
        });
    }

    let mut table = Table::new(&["S", "N", "best F1", "AUC-PR", "max recall"]);
    for series in &out {
        let max_recall = series
            .points
            .iter()
            .map(|p| p.recall)
            .fold(0.0f64, f64::max);
        table.row(&[
            format!("{}", series.s),
            series.n.to_string(),
            format!("{:.3}", series.best_f1),
            format!("{:.3}", series.auc_pr),
            format!("{max_recall:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(paper: S = 0.1 best but S = 0.01 close behind — sample far below\n\
         memory limits without losing much; trade S against N by available\n\
         cores)"
    );
    output::save("fig8_impact_s", &out);
}
