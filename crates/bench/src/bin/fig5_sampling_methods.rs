//! **Figure 5** — Precision–Recall of the four sampling strategies inside
//! EnsemFDet on Dataset #3 (`S = 0.1`, repetition rate `R = S·N = 8`,
//! i.e. `N = 80`).
//!
//! Expected shape (paper): Node-PIN bagging clearly worst (sampling the
//! sparse side shatters dense topology when `D_avg(merchant) ≫
//! D_avg(PIN)`); merchant bagging, two-sides bagging and random-edge
//! bagging close together.

use ensemfdet::{EnsemFdetConfig, SamplingMethodConfig};
use ensemfdet_bench::{datasets, methods, output, resolve_scale};
use ensemfdet_datagen::presets::JdDataset;
use ensemfdet_eval::Table;
use serde::Serialize;

#[derive(Serialize)]
struct MethodCurve {
    method: String,
    best_f1: f64,
    auc_pr: f64,
    points: Vec<ensemfdet_eval::PrPoint>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = resolve_scale(&args);
    println!("== Figure 5: sampling strategies on Dataset #3 (1/{scale}, S = 0.1, N = 80) ==\n");

    let ds = datasets::load(JdDataset::Jd3, scale);
    let labels = ds.labels();
    println!(
        "D_avg(PIN) = {:.2}, D_avg(Merchant) = {:.2} — the merchant side is denser\n",
        ds.graph.avg_user_degree(),
        ds.graph.avg_merchant_degree()
    );

    let variants = [
        (SamplingMethodConfig::TwoSide, "Two_sides_Bagging"),
        (SamplingMethodConfig::OneSideMerchant, "Node_Merchant_Bagging"),
        (SamplingMethodConfig::OneSideUser, "Node_PIN_Bagging"),
        (SamplingMethodConfig::RandomEdge, "Random_Edge_Bagging"),
    ];

    let mut table = Table::new(&["sampling", "best F1", "AUC-PR", "max recall"]);
    let mut out = Vec::new();
    for (method, name) in variants {
        let outcome = methods::run_ensemfdet(
            &ds.graph,
            EnsemFdetConfig {
                num_samples: 80,
                sample_ratio: 0.1,
                method,
                seed: 0xF165,
                ..Default::default()
            },
        );
        let curve = methods::ensemfdet_curve(&outcome, &labels);
        let max_recall = curve
            .points
            .iter()
            .map(|p| p.recall)
            .fold(0.0f64, f64::max);
        table.row(&[
            name.to_string(),
            format!("{:.3}", curve.best_f1()),
            format!("{:.3}", curve.auc_pr()),
            format!("{:.3}", max_recall),
        ]);
        out.push(MethodCurve {
            method: name.to_string(),
            best_f1: curve.best_f1(),
            auc_pr: curve.auc_pr(),
            points: curve.points,
        });
    }
    println!("{}", table.render());
    println!(
        "(paper shape: Node_PIN_Bagging worst by a wide margin; the other\n\
         three similar — sampling the dense side retains topology)"
    );
    output::save("fig5_sampling_methods", &out);
}
