//! Uniform curve builders for every method under evaluation.

use ensemfdet::{
    calibrate_weights, kcore_scores, spectral_scores, Calibration, DetectContext, EnsemFdet,
    EnsemFdetConfig, EnsembleOutcome, HybridScorer, ScoreNormalization, ScoringConfig,
};
use ensemfdet_baselines::{
    standard_detectors, FBox, FBoxConfig, Fraudar, FraudarConfig, Spoken, SpokenConfig,
};
use ensemfdet_eval::PrCurve;
use ensemfdet_graph::BipartiteGraph;

/// Runs the ensemble and returns its outcome (callers derive curves and
/// timing from it).
pub fn run_ensemfdet(g: &BipartiteGraph, cfg: EnsemFdetConfig) -> EnsembleOutcome {
    EnsemFdet::new(cfg).detect(g)
}

/// The ensemble's `T`-sweep PR curve from a finished outcome.
pub fn ensemfdet_curve(outcome: &EnsembleOutcome, labels: &[bool]) -> PrCurve {
    let sets: Vec<(f64, Vec<u32>)> = (1..=outcome.votes.max_user_votes())
        .map(|t| {
            (
                t as f64,
                outcome
                    .votes
                    .detected_users(t)
                    .into_iter()
                    .map(|u| u.0)
                    .collect(),
            )
        })
        .collect();
    PrCurve::from_threshold_sets(sets.iter().map(|(t, d)| (*t, d.as_slice())), labels)
}

/// Fraudar's cumulative-block polyline (thresholds are block counts `k`).
pub fn fraudar_curve(g: &BipartiteGraph, labels: &[bool], k: usize) -> PrCurve {
    let result = Fraudar::new(FraudarConfig {
        k,
        ..Default::default()
    })
    .run(g);
    let points = result.operating_points();
    PrCurve::from_threshold_sets(points.iter().map(|(k, d)| (*k as f64, d.as_slice())), labels)
}

/// SpokEn's score-sweep curve (25 components, as the paper configures it).
pub fn spoken_curve(g: &BipartiteGraph, labels: &[bool]) -> PrCurve {
    PrCurve::from_scores(&Spoken::new(SpokenConfig::default()).score_users(g), labels)
}

/// FBox's score-sweep curve.
pub fn fbox_curve(g: &BipartiteGraph, labels: &[bool]) -> PrCurve {
    PrCurve::from_scores(&FBox::new(FBoxConfig::default()).score_users(g), labels)
}

/// One score-sweep curve per baseline in the [`Detector`] registry
/// (default-configured), labeled by method name. One shared
/// [`DetectContext`], so the adjacency matrix is assembled at most once
/// across all six methods.
///
/// [`Detector`]: ensemfdet::Detector
pub fn detector_curves(g: &BipartiteGraph, labels: &[bool]) -> Vec<(&'static str, PrCurve)> {
    let ctx = DetectContext::new(g);
    standard_detectors()
        .iter()
        .map(|d| (d.name(), PrCurve::from_scores(&d.score(&ctx).scores, labels)))
        .collect()
}

/// The calibrated hybrid's curve: the three components computed once on
/// the parent graph (vote fraction from a finished ensemble outcome,
/// spectral and k-core from a shared context), fusion weights fitted on
/// the labels under both normalizations, and the PR curve swept over the
/// best fused score.
pub fn hybrid_curve(
    g: &BipartiteGraph,
    outcome: &EnsembleOutcome,
    labels: &[bool],
    base: &ScoringConfig,
) -> (Calibration, PrCurve) {
    let ctx = DetectContext::new(g);
    let vote = outcome.votes.user_scores();
    let spectral = spectral_scores(&ctx, base);
    let kcore = kcore_scores(&ctx);
    let cal = [ScoreNormalization::MinMax, ScoreNormalization::Rank]
        .into_iter()
        .map(|normalization| {
            let base = ScoringConfig {
                normalization,
                ..*base
            };
            calibrate_weights(&vote, &spectral, &kcore, labels, &base)
        })
        .max_by(|a, b| a.best_f1.partial_cmp(&b.best_f1).expect("finite F1"))
        .expect("two candidates");
    let fused = HybridScorer::new(cal.config).fuse(&vote, &spectral, &kcore);
    (cal, PrCurve::from_scores(&fused, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ensemfdet_graph::{GraphBuilder, MerchantId, UserId};

    fn planted() -> (BipartiteGraph, Vec<bool>) {
        let mut b = GraphBuilder::new();
        for u in 0..8u32 {
            for v in 0..4u32 {
                b.add_edge(UserId(u), MerchantId(v));
            }
        }
        for u in 8..80u32 {
            b.add_edge(UserId(u), MerchantId(4 + u % 31));
        }
        let g = b.build();
        let labels: Vec<bool> = (0..g.num_users()).map(|u| u < 8).collect();
        (g, labels)
    }

    #[test]
    fn all_methods_produce_curves() {
        let (g, labels) = planted();
        let out = run_ensemfdet(
            &g,
            EnsemFdetConfig {
                num_samples: 8,
                sample_ratio: 0.5,
                seed: 1,
                ..Default::default()
            },
        );
        assert!(!ensemfdet_curve(&out, &labels).points.is_empty());
        assert!(!fraudar_curve(&g, &labels, 5).points.is_empty());
        assert!(!spoken_curve(&g, &labels).points.is_empty());
        // On a graph this small the default 25-component SVD is full-rank,
        // so FBox's residuals (and the curve) legitimately vanish — only
        // require the sweep to be well-formed.
        for p in fbox_curve(&g, &labels).points {
            assert!(p.precision.is_finite() && p.recall.is_finite());
        }
    }

    #[test]
    fn registry_and_hybrid_curves_are_well_formed() {
        let (g, labels) = planted();
        let curves = detector_curves(&g, &labels);
        assert_eq!(curves.len(), 6);
        for (name, curve) in &curves {
            for p in &curve.points {
                assert!(p.precision.is_finite() && p.recall.is_finite(), "{name}");
            }
        }
        let out = run_ensemfdet(
            &g,
            EnsemFdetConfig {
                num_samples: 8,
                sample_ratio: 0.5,
                seed: 1,
                ..Default::default()
            },
        );
        let base = ScoringConfig::enabled();
        let (cal, curve) = hybrid_curve(&g, &out, &labels, &base);
        assert_eq!(cal.grid_evaluated, 66);
        // Calibration includes the pure-vote corner, so the fitted hybrid
        // never scores below the ensemble's own sweep.
        assert!(curve.best_f1() >= ensemfdet_curve(&out, &labels).best_f1() - 1e-12);
    }

    #[test]
    fn dense_block_methods_beat_chance_on_planted() {
        let (g, labels) = planted();
        let out = run_ensemfdet(
            &g,
            EnsemFdetConfig {
                num_samples: 8,
                sample_ratio: 0.5,
                seed: 1,
                ..Default::default()
            },
        );
        let chance = 8.0 / 80.0;
        assert!(ensemfdet_curve(&out, &labels).best_f1() > chance);
        assert!(fraudar_curve(&g, &labels, 5).best_f1() > chance);
    }
}
