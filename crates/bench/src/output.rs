//! Result persistence for the experiment binaries.

use serde::Serialize;
use std::path::PathBuf;

/// `results/` at the workspace root (created on demand), overridable via
/// `ENSEMFDET_RESULTS`.
pub fn results_dir() -> PathBuf {
    std::env::var("ENSEMFDET_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Writes `<results>/<name>.json` and reports the path on stdout.
pub fn save<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match ensemfdet_eval::write_json(value, &path) {
        Ok(()) => println!("\n[saved {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Curve → rows helper for text tables: `(threshold, detected, P, R, F1)`.
pub fn curve_rows(curve: &ensemfdet_eval::PrCurve) -> Vec<Vec<String>> {
    curve
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.threshold),
                p.detected.to_string(),
                format!("{:.3}", p.precision),
                format!("{:.3}", p.recall),
                format!("{:.3}", p.f1),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_writes_json() {
        let dir = std::env::temp_dir().join("ensemfdet_bench_output_test");
        std::env::set_var("ENSEMFDET_RESULTS", &dir);
        save("smoke", &serde_json::json!({"x": 1}));
        let content = std::fs::read_to_string(dir.join("smoke.json")).unwrap();
        assert!(content.contains("\"x\": 1"));
        std::env::remove_var("ENSEMFDET_RESULTS");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn curve_rows_format() {
        let curve = ensemfdet_eval::PrCurve {
            points: vec![ensemfdet_eval::PrPoint {
                threshold: 3.0,
                detected: 10,
                precision: 0.5,
                recall: 0.25,
                f1: 1.0 / 3.0,
            }],
        };
        let rows = curve_rows(&curve);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], "3");
        assert_eq!(rows[0][4], "0.333");
    }
}
