//! Dataset construction for the experiments.

use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate, Dataset};

/// Per-dataset deterministic seed so every experiment binary sees the same
/// three graphs at a given scale.
pub fn dataset_seed(which: JdDataset) -> u64 {
    match which {
        JdDataset::Jd1 => 0xD5_0001,
        JdDataset::Jd2 => 0xD5_0002,
        JdDataset::Jd3 => 0xD5_0003,
    }
}

/// Generates one Table I dataset model at `1/scale`.
pub fn load(which: JdDataset, scale: u32) -> Dataset {
    generate(&jd_preset(which, scale, dataset_seed(which)))
}

/// Generates all three datasets.
pub fn load_all(scale: u32) -> Vec<(JdDataset, Dataset)> {
    JdDataset::ALL
        .into_iter()
        .map(|w| (w, load(w, scale)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_deterministic() {
        let a = load(JdDataset::Jd1, 400);
        let b = load(JdDataset::Jd1, 400);
        assert_eq!(a.graph.edge_slice(), b.graph.edge_slice());
        assert_eq!(a.blacklist, b.blacklist);
    }

    #[test]
    fn datasets_differ() {
        let a = load(JdDataset::Jd1, 400);
        let b = load(JdDataset::Jd2, 400);
        assert_ne!(a.graph.num_users(), b.graph.num_users());
    }
}
