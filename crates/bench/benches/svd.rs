//! Randomized truncated SVD: cost vs rank `k` and vs power iterations `q`,
//! plus the accuracy/cost trade-off of `q` (the subspace sharpening the
//! SpokEn/FBox baselines rely on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ensemfdet_linalg::{lanczos_svd, randomized_svd, CsrMatrix, SvdOptions};
use std::hint::black_box;

/// Low-rank-plus-noise sparse matrix shaped like a transaction graph.
fn matrix(rows: u32, cols: u32, nnz: u32) -> CsrMatrix {
    let triplets: Vec<(u32, u32, f64)> = (0..nnz)
        .map(|i| {
            let r = i % rows;
            let c = if i % 7 == 0 {
                r % 8 % cols // 8 dense columns: the planted spectrum
            } else {
                i.wrapping_mul(2654435761) % cols
            };
            (r, c, 1.0)
        })
        .collect();
    CsrMatrix::from_triplets(rows as usize, cols as usize, &triplets)
}

fn bench_rank(c: &mut Criterion) {
    let a = matrix(20_000, 3_000, 60_000);
    let mut group = c.benchmark_group("randomized_svd_by_k");
    group.sample_size(10);
    for k in [5usize, 25, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                black_box(randomized_svd(
                    &a,
                    k,
                    SvdOptions {
                        power_iters: 2,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

fn bench_power_iters(c: &mut Criterion) {
    let a = matrix(20_000, 3_000, 60_000);
    let mut group = c.benchmark_group("randomized_svd_by_q");
    group.sample_size(10);
    for q in [0usize, 1, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                black_box(randomized_svd(
                    &a,
                    25,
                    SvdOptions {
                        power_iters: q,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    group.finish();
}

/// Randomized vs Lanczos at matched rank — the two truncated-SVD routes.
fn bench_algorithms(c: &mut Criterion) {
    let a = matrix(20_000, 3_000, 60_000);
    let mut group = c.benchmark_group("svd_algorithm");
    group.sample_size(10);
    group.bench_function("randomized_q2", |b| {
        b.iter(|| {
            black_box(randomized_svd(
                &a,
                25,
                SvdOptions {
                    power_iters: 2,
                    ..Default::default()
                },
            ))
        })
    });
    group.bench_function("lanczos_extra8", |b| {
        b.iter(|| black_box(lanczos_svd(&a, 25, 8)))
    });
    group.finish();
}

criterion_group!(svd, bench_rank, bench_power_iters, bench_algorithms);
criterion_main!(svd);
