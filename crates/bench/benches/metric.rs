//! The density metric ablation: peel cost under the log-weighted metric
//! (Definition 2) vs the plain average-degree metric, and a once-per-run
//! quality assertion that only the log metric survives camouflage — the
//! reason Definition 2 penalizes popular merchants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ensemfdet::metric::{AverageDegreeMetric, LogWeightedMetric};
use ensemfdet::peel::peel_densest_full;
use ensemfdet_graph::{BipartiteGraph, GraphBuilder, MerchantId, UserId};
use std::hint::black_box;

/// Fraud block whose users camouflage heavily behind a popular merchant.
fn camouflaged_graph(background: u32) -> BipartiteGraph {
    let mut b = GraphBuilder::new();
    // Fraud: 40 users × 8 ring merchants, complete; 4 camouflage edges each
    // to the single popular merchant 8.
    for u in 0..40u32 {
        for v in 0..8u32 {
            b.add_edge(UserId(u), MerchantId(v));
        }
        for _ in 0..4 {
            b.add_edge(UserId(u), MerchantId(8));
        }
    }
    // Honest traffic concentrated on merchant 8 plus a sparse tail.
    for u in 40..40 + background {
        b.add_edge(UserId(u), MerchantId(8));
        b.add_edge(UserId(u), MerchantId(9 + u % 50));
    }
    b.build_with(ensemfdet_graph::builder::DuplicatePolicy::MergeBinary)
}

/// The quality claim behind Definition 2, asserted once per bench run: the
/// log metric keeps the detected block on the fraud core; the un-penalized
/// metric gets dragged into the popular merchant's star.
fn assert_camouflage_resistance() {
    let g = camouflaged_graph(4_000);
    let log_block = peel_densest_full(&g, &LogWeightedMetric::paper_default()).unwrap();
    let fraud_in_log = log_block.users.iter().filter(|u| u.0 < 40).count();
    assert!(
        fraud_in_log >= 35 && log_block.users.len() <= 60,
        "log metric lost the fraud core: {} fraud of {} detected",
        fraud_in_log,
        log_block.users.len()
    );
    let avg_block = peel_densest_full(&g, &AverageDegreeMetric).unwrap();
    // The popular merchant pulls thousands of honest users into the
    // average-degree block (or the block misses the fraud core entirely).
    let honest_in_avg = avg_block.users.iter().filter(|u| u.0 >= 40).count();
    assert!(
        honest_in_avg > 100 || avg_block.merchants.iter().any(|v| v.0 == 8),
        "expected the un-penalized metric to chase the popular merchant"
    );
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("peel_by_metric");
    for background in [2_000u32, 8_000] {
        let g = camouflaged_graph(background);
        group.bench_with_input(
            BenchmarkId::new("log_weighted", background),
            &g,
            |b, g| b.iter(|| black_box(peel_densest_full(g, &LogWeightedMetric::paper_default()))),
        );
        group.bench_with_input(
            BenchmarkId::new("average_degree", background),
            &g,
            |b, g| b.iter(|| black_box(peel_densest_full(g, &AverageDegreeMetric))),
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    assert_camouflage_resistance();
    bench_metrics(c);
}

criterion_group!(metric, benches);
criterion_main!(metric);
