//! Ablation: indexed-heap greedy peel (O((V+E) log V), the paper's
//! complexity) vs a naive min-rescan peel (O(V·(V+E))).
//!
//! The heap is what makes FDET's inner loop cheap enough to run 80× per
//! detection; this bench quantifies the gap as the graph grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ensemfdet::metric::{DensityMetric, LogWeightedMetric};
use ensemfdet::peel::peel_densest_full;
use ensemfdet_graph::{BipartiteGraph, MerchantId, UserId};
use std::hint::black_box;

/// Planted-block graph with `n` background users.
fn graph(n: u32) -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..30u32 {
        for v in 0..8u32 {
            edges.push((u, v));
        }
    }
    for u in 30..n {
        edges.push((u, 8 + u % (n / 4)));
        edges.push((u, 8 + (u * 13) % (n / 4)));
    }
    BipartiteGraph::from_edges(n as usize, (8 + n / 4) as usize, edges).unwrap()
}

/// Reference implementation: rescan for the minimum-priority node at every
/// step instead of using the heap.
fn naive_peel(g: &BipartiteGraph, metric: &dyn DensityMetric) -> f64 {
    let nu = g.num_users();
    let n = nu + g.num_merchants();
    let mut vdeg = vec![0.0f64; g.num_merchants()];
    for (_, _, v, w) in g.edges() {
        vdeg[v.index()] += w;
    }
    let cw: Vec<f64> = vdeg.iter().map(|&d| metric.column_weight(d)).collect();
    let mut priority = vec![0.0f64; n];
    let mut f = 0.0;
    for (_, u, v, w) in g.edges() {
        let s = w * cw[v.index()];
        priority[u.index()] += s;
        priority[nu + v.index()] += s;
        f += s;
    }
    let mut alive: Vec<bool> = priority.iter().map(|&p| p > 0.0).collect();
    let mut edge_alive = vec![true; g.num_edges()];
    let mut size = alive.iter().filter(|&&a| a).count();
    let mut best = if size > 0 { f / size as f64 } else { 0.0 };
    while size > 0 {
        // O(n) rescan — the whole point of the ablation.
        let (node, p) = alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| (i, priority[i]))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .unwrap();
        alive[node] = false;
        f -= p;
        size -= 1;
        if node < nu {
            for (v, e, w) in g.merchants_of(UserId(node as u32)) {
                if edge_alive[e] {
                    edge_alive[e] = false;
                    priority[nu + v.index()] -= w * cw[v.index()];
                }
            }
        } else {
            let v = MerchantId((node - nu) as u32);
            for (u, e, w) in g.users_of(v) {
                if edge_alive[e] {
                    edge_alive[e] = false;
                    priority[u.index()] -= w * cw[v.index()];
                }
            }
        }
        if size > 0 {
            best = best.max(f.max(0.0) / size as f64);
        }
    }
    best
}

fn bench_peeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("peel_densest");
    for n in [1_000u32, 4_000, 16_000] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::new("indexed_heap", n), &g, |b, g| {
            b.iter(|| black_box(peel_densest_full(g, &LogWeightedMetric::paper_default())))
        });
        // The naive peel is quadratic; skip the largest size to keep the
        // suite's runtime sane.
        if n <= 4_000 {
            group.bench_with_input(BenchmarkId::new("naive_rescan", n), &g, |b, g| {
                b.iter(|| black_box(naive_peel(g, &LogWeightedMetric::paper_default())))
            });
        }
    }
    group.finish();
}

/// Both peels must report the same best density (sanity, run once).
fn assert_equivalence() {
    let g = graph(1_000);
    let heap_score = peel_densest_full(&g, &LogWeightedMetric::paper_default())
        .unwrap()
        .score;
    let naive_score = naive_peel(&g, &LogWeightedMetric::paper_default());
    assert!(
        (heap_score - naive_score).abs() < 1e-9,
        "heap {heap_score} vs naive {naive_score}"
    );
}

fn benches(c: &mut Criterion) {
    assert_equivalence();
    bench_peeling(c);
}

criterion_group!(peeling, benches);
criterion_main!(peeling);
