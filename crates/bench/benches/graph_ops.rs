//! Graph-substrate benchmarks: dual-CSR construction, connected
//! components, and k-core decomposition as |E| grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ensemfdet_graph::{components::connected_components, core_decomposition, BipartiteGraph};
use std::hint::black_box;

fn edges(n: u32) -> (usize, usize, Vec<(u32, u32)>) {
    let nu = (n / 2).max(1);
    let nv = (n / 8).max(1);
    let e: Vec<(u32, u32)> = (0..n)
        .map(|i| (i % nu, i.wrapping_mul(2654435761) % nv))
        .collect();
    (nu as usize, nv as usize, e)
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    for n in [50_000u32, 200_000] {
        let (nu, nv, e) = edges(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &e, |b, e| {
            b.iter(|| black_box(BipartiteGraph::from_edges(nu, nv, e.clone()).unwrap()))
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_algorithms");
    for n in [50_000u32, 200_000] {
        let (nu, nv, e) = edges(n);
        let g = BipartiteGraph::from_edges(nu, nv, e).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("kcore", n), &g, |b, g| {
            b.iter(|| black_box(core_decomposition(g)))
        });
        group.bench_with_input(BenchmarkId::new("components", n), &g, |b, g| {
            b.iter(|| black_box(connected_components(g)))
        });
    }
    group.finish();
}

criterion_group!(graph_ops, bench_construction, bench_algorithms);
criterion_main!(graph_ops);
