//! Sampler throughput: RES / ONS / TNS cost as `|E|` grows, and RES cost as
//! the ratio `S` shrinks (per-sample work should track the *sample* size,
//! not the graph size — that is what makes `S = 0.01` ensembles cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ensemfdet_graph::BipartiteGraph;
use ensemfdet_sampling::{Sampler, SamplingMethod};
use std::hint::black_box;

fn graph(num_edges: u32) -> BipartiteGraph {
    let nu = num_edges / 2;
    let nv = num_edges / 8;
    let edges: Vec<(u32, u32)> = (0..num_edges)
        .map(|i| (i % nu, (i.wrapping_mul(2654435761)) % nv))
        .collect();
    BipartiteGraph::from_edges(nu as usize, nv as usize, edges).unwrap()
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_throughput");
    for edges in [50_000u32, 200_000] {
        let g = graph(edges);
        group.throughput(Throughput::Elements(edges as u64));
        for method in SamplingMethod::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.name(), edges),
                &g,
                |b, g| b.iter(|| black_box(method.sample(g, 0.1, 42))),
            );
        }
    }
    group.finish();
}

fn bench_res_ratio(c: &mut Criterion) {
    let g = graph(200_000);
    let mut group = c.benchmark_group("res_by_ratio");
    for ratio in [0.01f64, 0.05, 0.1, 0.5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(ratio),
            &ratio,
            |b, &ratio| b.iter(|| black_box(SamplingMethod::RandomEdge.sample(&g, ratio, 7))),
        );
    }
    group.finish();
}

criterion_group!(sampling, bench_methods, bench_res_ratio);
criterion_main!(sampling);
