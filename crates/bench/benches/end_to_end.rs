//! End-to-end scaling: EnsemFDet (`S = 0.1`, `N = 20`) vs Fraudar
//! (`k = 30`) on growing synthetic JD-like datasets — the Criterion
//! rendition of Table III's shape. Both scale near-linearly in `|E|`; on a
//! multicore box the ensemble's samples overlap, which wall-clock Criterion
//! numbers on this 1-core sandbox cannot show (see the table3_timing
//! binary's ideal-parallel column for that leg).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ensemfdet::{EnsemFdet, EnsemFdetConfig};
use ensemfdet_baselines::{Fraudar, FraudarConfig};
use ensemfdet_datagen::presets::{jd_preset, JdDataset};
use ensemfdet_datagen::{generate, Dataset};
use std::hint::black_box;

fn dataset(scale: u32) -> Dataset {
    generate(&jd_preset(JdDataset::Jd1, scale, 9))
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for scale in [400u32, 100] {
        let ds = dataset(scale);
        let edges = ds.graph.num_edges();
        group.bench_with_input(
            BenchmarkId::new("ensemfdet_s0.1_n20", edges),
            &ds,
            |b, ds| {
                let det = EnsemFdet::new(EnsemFdetConfig {
                    num_samples: 20,
                    sample_ratio: 0.1,
                    seed: 1,
                    ..Default::default()
                });
                b.iter(|| black_box(det.detect(&ds.graph)))
            },
        );
        group.bench_with_input(BenchmarkId::new("fraudar_k30", edges), &ds, |b, ds| {
            let det = Fraudar::new(FraudarConfig {
                k: 30,
                ..Default::default()
            });
            b.iter(|| black_box(det.run(&ds.graph)))
        });
    }
    group.finish();
}

criterion_group!(end_to_end, bench_end_to_end);
criterion_main!(end_to_end);
